"""Tests for the pluggable eviction/admission policy subsystem.

Covers the registry (names, aliases, deprecation), the behaviour of each
built-in policy in isolation, the property-style invariant check — every
registered policy must preserve storage/index invariants and data
correctness under a randomized get/invalidate workload — and the
determinism guarantee (same seed ⇒ same eviction trace, observed through
``cache.evict`` telemetry).
"""

import numpy as np
import pytest

from repro import clampi, obs
from repro.core import policy as pol
from repro.core.config import EvictionPolicy
from repro.core.entry import CacheEntry
from repro.mpi.datatypes import BYTE
from repro.mpi import SimMPI
from repro.util import KiB

BUILTINS = {
    "clampi-full",
    "clampi-temporal",
    "clampi-positional",
    "lru",
    "slru",
    "gdsf",
    "tinylfu",
}


def entry(trg=1, dsp=0, size=64, last=0) -> CacheEntry:
    e = CacheEntry(trg, dsp, BYTE, size)
    e.last = last
    return e


def ctx(seq=100, ags=64.0, adjacent_free=0) -> pol.PolicyContext:
    return pol.PolicyContext(
        seq_index=seq, avg_get_size=ags, adjacent_free=adjacent_free
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(pol.available_policies())

    def test_available_is_sorted(self):
        names = pol.available_policies()
        assert names == sorted(names)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            pol.register("lru", pol.LRUPolicy)

    def test_register_replace(self):
        pol.register("test-replace-me", pol.LRUPolicy)
        try:
            pol.register("test-replace-me", pol.SegmentedLRUPolicy, replace=True)
            p = pol.make_policy("test-replace-me")
            assert isinstance(p, pol.SegmentedLRUPolicy)
        finally:
            pol._REGISTRY.pop("test-replace-me", None)

    def test_register_rejects_legacy_alias_names(self):
        with pytest.raises(ValueError, match="reserved legacy alias"):
            pol.register("full", pol.LRUPolicy)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            pol.register("", pol.LRUPolicy)

    def test_canonical_passthrough(self):
        assert pol.canonical_policy_name("gdsf") == "gdsf"

    def test_canonical_bare_score_aliases(self):
        assert pol.canonical_policy_name("full") == "clampi-full"
        assert pol.canonical_policy_name("temporal") == "clampi-temporal"
        assert pol.canonical_policy_name("positional") == "clampi-positional"

    def test_canonical_enum_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="EvictionPolicy.FULL"):
            assert (
                pol.canonical_policy_name(EvictionPolicy.FULL) == "clampi-full"
            )

    def test_canonical_unknown_raises_with_listing(self):
        with pytest.raises(ValueError, match="registered"):
            pol.canonical_policy_name("no-such-policy")

    def test_canonical_rejects_non_string(self):
        with pytest.raises(TypeError):
            pol.canonical_policy_name(42)

    def test_make_policy_stamps_factory_name(self):
        pol.register("test-stamped", lambda seed=0: pol.LRUPolicy(seed))
        try:
            p = pol.make_policy("test-stamped")
            assert p.name == "test-stamped"
        finally:
            pol._REGISTRY.pop("test-stamped", None)


# ---------------------------------------------------------------------------
# per-policy unit behaviour
# ---------------------------------------------------------------------------
class TestLRU:
    def test_score_is_recency(self):
        p = pol.make_policy("lru")
        old, new = entry(dsp=0, last=3), entry(dsp=64, last=90)
        assert p.victim_score(old, ctx()) < p.victim_score(new, ctx())


class TestSegmentedLRU:
    def test_probation_evicted_before_protected(self):
        p = pol.make_policy("slru")
        p.bind(64, seed=1)
        protected, probation = entry(dsp=0, last=50), entry(dsp=64, last=80)
        p.on_hit(protected, ctx())  # promote
        assert p.victim_score(probation, ctx()) < p.victim_score(
            protected, ctx()
        )

    def test_free_demotes(self):
        p = pol.make_policy("slru")
        p.bind(64, seed=1)
        e = entry(last=50)
        p.on_hit(e, ctx())
        promoted = p.victim_score(e, ctx())
        p.on_free(e, "evicted")
        assert p.victim_score(e, ctx()) < promoted

    def test_rebind_clears_segments(self):
        p = pol.make_policy("slru")
        p.bind(64, seed=1)
        e = entry(last=50)
        p.on_hit(e, ctx())
        p.bind(64, seed=1)
        assert p.victim_score(e, ctx()) == pytest.approx(50.0)


class TestGDSF:
    def test_frequency_raises_priority(self):
        p = pol.make_policy("gdsf")
        p.bind(64, seed=1)
        hot, cold = entry(dsp=0, size=64), entry(dsp=128, size=64)
        for e in (hot, cold):
            p.on_miss(e.key, e.size, ctx())
            p.on_insert(e, ctx())
        for _ in range(5):
            p.on_hit(hot, ctx())
        assert p.victim_score(cold, ctx()) < p.victim_score(hot, ctx())

    def test_cheap_big_entries_go_first(self):
        # equal frequency: the lower refetch-cost-per-byte entry loses
        p = pol.make_policy("gdsf")
        p.bind(64, seed=1)
        small, big = entry(dsp=0, size=64), entry(dsp=128, size=4096)
        cost = lambda e: 1e-6  # flat cost -> per-byte favours small  # noqa: E731
        c = pol.PolicyContext(seq_index=10, avg_get_size=64.0, miss_cost=cost)
        for e in (small, big):
            p.on_miss(e.key, e.size, c)
            p.on_insert(e, c)
        assert p.victim_score(big, c) < p.victim_score(small, c)

    def test_eviction_advances_aging_clock(self):
        p = pol.make_policy("gdsf")
        p.bind(64, seed=1)
        e = entry(size=64)
        p.on_miss(e.key, e.size, ctx())
        p.on_insert(e, ctx())
        assert p._clock == 0.0
        p.on_free(e, "evicted")
        assert p._clock > 0.0

    def test_invalidation_does_not_age(self):
        p = pol.make_policy("gdsf")
        p.bind(64, seed=1)
        e = entry(size=64)
        p.on_insert(e, ctx())
        p.on_free(e, "invalidated")
        assert p._clock == 0.0


class TestTinyLFU:
    def test_rejects_first_touch_admits_second(self):
        p = pol.make_policy("tinylfu")
        p.bind(64, seed=1)
        e = entry()
        p.on_miss(e.key, e.size, ctx())
        assert not p.admit(e, ctx())
        p.on_miss(e.key, e.size, ctx())
        assert p.admit(e, ctx())

    def test_sketch_deterministic_across_instances(self):
        a = pol._CountMinSketch(256, seed=7)
        b = pol._CountMinSketch(256, seed=7)
        for k in range(500):
            a.add(k * 17)
            b.add(k * 17)
        assert all(a.estimate(k * 17) == b.estimate(k * 17) for k in range(500))

    def test_sketch_estimate_upper_bounds_count(self):
        s = pol._CountMinSketch(256, seed=3)
        for _ in range(5):
            s.add(1234)
        assert s.estimate(1234) >= 5

    def test_sketch_halving_keeps_estimates_fresh(self):
        s = pol._CountMinSketch(16, seed=3)
        for _ in range(s.sample_period):
            s.add(99)
        # the aging pass ran: counters were halved at least once
        assert s.estimate(99) < s.sample_period

    def test_frequency_beats_recency_in_victim_score(self):
        p = pol.make_policy("tinylfu")
        p.bind(64, seed=1)
        hot, cold = entry(dsp=0, last=10), entry(dsp=64, last=90)
        for _ in range(8):
            p.on_hit(hot, ctx())
        assert p.victim_score(cold, ctx()) < p.victim_score(hot, ctx())


# ---------------------------------------------------------------------------
# property-style: every registered policy preserves the cache invariants
# ---------------------------------------------------------------------------
def _fill_pattern(mpi, nbytes):
    return ((np.arange(nbytes) * 13) % 251).astype(np.uint8)


@pytest.mark.parametrize("policy_name", sorted(BUILTINS))
def test_policy_preserves_invariants_under_random_workload(policy_name):
    def program(m):
        nbytes = 8 * KiB
        # pre-fill the target window before wrapping
        cfg = clampi.Config(
            index_entries=32,
            storage_bytes=1 * KiB,
            sample_size=4,
            policy=policy_name,
        )
        local = _fill_pattern(m, nbytes) if m.rank == 1 else np.zeros(
            nbytes, np.uint8
        )
        win = clampi.window_create(
            m.comm_world, local, mode=clampi.Mode.USER_DEFINED, config=cfg
        )
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        rng = np.random.default_rng(42)
        win.lock_all()
        for i in range(400):
            dsp = int(rng.integers(0, nbytes - 1))
            n = int(rng.integers(1, min(256, nbytes - dsp) + 1))
            expected = ((np.arange(dsp, dsp + n) * 13) % 251).astype(np.uint8)
            buf = np.empty(n, np.uint8)
            win.get_blocking(buf, 1, dsp)
            assert np.array_equal(buf, expected), policy_name
            if i % 50 == 49:
                win.check_invariants()
            if i % 120 == 119:
                win.invalidate()
                win.check_invariants()
        win.check_invariants()
        win.unlock_all()
        return win.stats.snapshot()

    results = SimMPI(nprocs=2).run(program)
    snap = results[0]
    assert snap["gets"] == 400
    assert snap["policy"] == policy_name


def _evict_trace(policy_name: str) -> list[tuple]:
    """The cache.evict event stream fingerprint of one fixed workload."""
    trace: list[tuple] = []
    sink = obs.CallbackSink(
        lambda e: trace.append(
            (
                round(e.time, 12),
                e.attrs["reason"],
                e.attrs["visited"],
                round(e.attrs["score"], 12),
            )
        ),
        kinds=[obs.CACHE_EVICT],
    )

    def program(m):
        nbytes = 8 * KiB
        cfg = clampi.Config(
            index_entries=16, storage_bytes=1 * KiB, policy=policy_name
        )
        win = clampi.window_allocate(
            m.comm_world, nbytes, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
        )
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        rng = np.random.default_rng(7)
        win.lock_all()
        # a small, skewed key space: repeats happen, so even an admission
        # filter caches entries and capacity evictions occur
        for _ in range(300):
            dsp = int(rng.integers(0, 30)) * 256
            n = int(rng.integers(1, 257))
            win.get_blocking(np.empty(n, np.uint8), 1, dsp)
        win.unlock_all()
        return True

    with obs.capture(sink):
        SimMPI(nprocs=2).run(program)
    return trace


@pytest.mark.parametrize("policy_name", ["clampi-full", "slru", "tinylfu"])
def test_same_seed_same_eviction_trace(policy_name):
    first = _evict_trace(policy_name)
    second = _evict_trace(policy_name)
    assert first, "workload must actually evict"
    assert first == second

def test_evict_events_carry_policy_and_score():
    events = []
    sink = obs.CallbackSink(events.append, kinds=[obs.CACHE_EVICT])

    def program(m):
        cfg = clampi.Config(index_entries=16, storage_bytes=1 * KiB, policy="lru")
        win = clampi.window_allocate(
            m.comm_world, 8 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
        )
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        win.lock_all()
        rng = np.random.default_rng(3)
        for _ in range(200):
            dsp = int(rng.integers(0, 8 * KiB - 128))
            win.get_blocking(np.empty(128, np.uint8), 1, dsp)
        win.unlock_all()

    with obs.capture(sink):
        SimMPI(nprocs=2).run(program)
    assert events
    for e in events:
        assert e.attrs["policy"] == "lru"
        assert "score" in e.attrs


def test_admission_reject_counted_and_emitted():
    events = []
    sink = obs.CallbackSink(events.append, kinds=[obs.CACHE_ADMIT])

    def program(m):
        cfg = clampi.Config(
            index_entries=32, storage_bytes=4 * KiB, policy="tinylfu"
        )
        win = clampi.window_allocate(
            m.comm_world, 8 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
        )
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        win.lock_all()
        # distinct first-touch gets: tinylfu must reject them all
        for i in range(16):
            win.get_blocking(np.empty(64, np.uint8), 1, i * 256)
        win.unlock_all()
        return win.stats.snapshot()

    with obs.capture(sink):
        results = SimMPI(nprocs=2).run(program)
    snap = results[0]
    assert snap["admission_rejects"] == 16
    assert snap["failing"] == 16
    assert len(events) == 16
    assert all(e.attrs["admitted"] is False for e in events)
    assert all(e.attrs["policy"] == "tinylfu" for e in events)


def test_rejected_misses_still_return_correct_data():
    def program(m):
        nbytes = 4 * KiB
        local = _fill_pattern(m, nbytes) if m.rank == 1 else np.zeros(
            nbytes, np.uint8
        )
        win = clampi.window_create(
            m.comm_world,
            local,
            mode=clampi.Mode.ALWAYS_CACHE,
            config=clampi.Config(
                index_entries=32, storage_bytes=2 * KiB, policy="tinylfu"
            ),
        )
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        win.lock_all()
        for i in range(16):
            dsp = i * 128
            buf = np.empty(64, np.uint8)
            win.get_blocking(buf, 1, dsp)
            expected = ((np.arange(dsp, dsp + 64) * 13) % 251).astype(np.uint8)
            assert np.array_equal(buf, expected)
        win.unlock_all()
        return True

    assert SimMPI(nprocs=2).run(program)[0]


def test_default_policy_virtual_time_unchanged_by_subsystem():
    """clampi-full through the policy engine == the historical engine.

    The legacy enum spelling and the registry name must produce identical
    virtual times and stats (bit-identical figures guarantee).
    """

    def run_once(policy_spec):
        def program(m):
            cfg = clampi.Config(
                index_entries=64, storage_bytes=2 * KiB, policy=policy_spec
            )
            win = clampi.window_allocate(
                m.comm_world, 8 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock_all()
            rng = np.random.default_rng(11)
            for _ in range(300):
                dsp = int(rng.integers(0, 8 * KiB - 256))
                n = int(rng.integers(1, 257))
                win.get_blocking(np.empty(n, np.uint8), 1, dsp)
            win.unlock_all()
            return m.time, win.stats.snapshot()

        return SimMPI(nprocs=2).run(program)[0]

    t_name, snap_name = run_once("clampi-full")
    with pytest.warns(DeprecationWarning):
        t_enum, snap_enum = run_once(EvictionPolicy.FULL)
    assert t_name == t_enum
    assert snap_name == snap_enum
