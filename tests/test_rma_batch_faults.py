"""Batched gets under fault injection, and sanitizer coverage of batches.

``get_batch`` elements flow through the *full* interceptor pipeline, so
the resilience and analysis guarantees of scalar gets must carry over
unchanged: injected transient failures fire per element and are retried
with virtual-time backoff, and the sanitizer unpacks the batched
accounting events (``rma.get_batch`` / ``cache.access_batch``) into
per-element records — a batched get racing an overlapping put is caught
exactly like a scalar one.
"""

import numpy as np

from repro import obs
from repro.analysis import Sanitizer, ViolationKind, sanitize
from repro.apps import LCCApp
from repro.apps.cachespec import CacheSpec
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.mpi import SimMPI, Window
from repro.obs import FAULT_INJECTED, FAULT_RETRY
from repro.obs.events import (
    CACHE_ACCESS_BATCH,
    RMA_GET_BATCH,
    RMA_PUT,
    Event,
)

PLAN = FaultPlan.of(FaultRule("get", probability=0.3), seed=11)
#: Generous budget so failure streaks cannot realistically exhaust it
#: (0.3**8 ~ 7e-5 per op) — the runs must stay transparent.
RETRY = RetryPolicy(max_attempts=8)


def _batch_ring_program(mpi, rounds=8):
    """Each rank repeatedly batch-gets four slices from its successor."""
    comm = mpi.comm_world
    win = Window.allocate(comm, 512)
    win.local_view(np.float64)[:] = np.arange(64) + 100.0 * mpi.rank
    comm.barrier()
    peer = (mpi.rank + 1) % mpi.size
    out = []
    with win.lock_all_epoch():
        for i in range(rounds):
            bufs = [np.empty(8) for _ in range(4)]
            win.get_batch(
                [(bufs[j], peer, ((i + j) % 8) * 64) for j in range(4)]
            )
            win.flush(peer)
            out.append(np.vstack(bufs))
    return np.vstack(out), win.faults_injected, win.retries, mpi.time


class TestBatchedGetsUnderFaults:
    def test_faults_fire_and_results_stay_bit_identical(self):
        clean = SimMPI(nprocs=4).run(_batch_ring_program)
        faulty = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(
            _batch_ring_program
        )
        for (a, fa, _, _), (b, fb, _, _) in zip(clean, faulty):
            assert np.array_equal(a, b)
            assert fa == 0
        assert sum(f for _, f, _, _ in faulty) > 0

    def test_retries_charge_virtual_time_backoff(self):
        clean = SimMPI(nprocs=4).run(_batch_ring_program)
        faulty = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(
            _batch_ring_program
        )
        assert sum(r for _, _, r, _ in faulty) > 0
        # Wasted round trips + backoff delays slow the faulted run down.
        assert max(t for *_, t in faulty) > max(t for *_, t in clean)

    def test_fault_and_retry_events_name_the_batched_ops(self):
        with obs.capture() as sink:
            SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(
                _batch_ring_program
            )
        injected = sink.events(kind=FAULT_INJECTED)
        retried = sink.events(kind=FAULT_RETRY)
        assert injected and retried
        # Batch elements fault at the same per-op site scalar gets use.
        assert {e.attrs["op"] for e in injected} == {"get"}
        assert {e.attrs["op"] for e in retried} == {"get"}
        assert all(e.attrs["delay"] > 0 for e in retried)

    def test_deterministic_injection_across_runs(self):
        a = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_batch_ring_program)
        b = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_batch_ring_program)
        for (xa, fa, ra, ta), (xb, fb, rb, tb) in zip(a, b):
            assert np.array_equal(xa, xb)
            assert (fa, ra, ta) == (fb, rb, tb)


W = 7  # window id for the synthetic sanitizer streams


def _put(rank, target, lo, hi):
    return Event(
        RMA_PUT,
        rank,
        0.0,
        0,
        W,
        attrs={"target": target, "base": lo, "span": hi - lo, "nbytes": hi - lo},
    )


def _get_batch(rank, target, ranges):
    ops = [
        {
            "target": target,
            "disp": lo,
            "nbytes": hi - lo,
            "base": lo,
            "span": hi - lo,
            "origin": 0x10000 + 0x1000 * i,  # disjoint origin buffers
            "onbytes": hi - lo,
        }
        for i, (lo, hi) in enumerate(ranges)
    ]
    return Event(
        RMA_GET_BATCH,
        rank,
        0.0,
        0,
        W,
        attrs={
            "count": len(ops),
            "nbytes": sum(op["nbytes"] for op in ops),
            "ops": ops,
        },
    )


class TestSanitizerUnpacksBatches:
    def test_batched_get_races_with_overlapping_put(self):
        san = Sanitizer()
        san.handle(_put(0, 2, 0, 64))
        # Element 0 is disjoint, element 1 overlaps the put: exactly one
        # race, attributed to the overlapping element.
        san.handle(_get_batch(1, 2, [(200, 264), (32, 96)]))
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_GET]

    def test_put_after_batched_get_races_too(self):
        san = Sanitizer()
        san.handle(_get_batch(0, 2, [(0, 64)]))
        san.handle(_put(1, 2, 32, 96))
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_GET]

    def test_disjoint_batch_is_clean(self):
        san = Sanitizer()
        san.handle(_put(0, 2, 0, 64))
        san.handle(_get_batch(1, 2, [(64, 128), (256, 320)]))
        assert san.violations == []

    def test_batched_stale_cache_hit_detected(self):
        san = Sanitizer()
        san.handle(_put(0, 2, 0, 64))
        san.handle(
            Event(
                CACHE_ACCESS_BATCH,
                1,
                0.0,
                0,
                W,
                attrs={
                    "count": 1,
                    "ops": [
                        {
                            "access": "hit_full",
                            "target": 2,
                            "base": 32,
                            "nbytes": 64,
                        }
                    ],
                },
            )
        )
        assert ViolationKind.STALE_CACHE_HIT in [
            v.kind for v in san.violations
        ]

    def test_batched_lcc_is_clean_under_strict_sanitizer(self):
        # The end-to-end guarantee: a real batched workload's get/flush
        # discipline sails through strict mode, via the batch events.
        app = LCCApp(scale=5, edge_factor=8, seed=2)
        with sanitize(strict=True) as san:
            result = app.run(
                nprocs=4, spec=CacheSpec.clampi_fixed(256, 64 * 1024), batch=True
            )
        assert san.violations == []
        assert san._seq > 100  # the batch events really were unpacked
        assert result.lcc.shape == (app.nvertices,)
