"""Behavioural tests for CachedWindow: the CLaMPI get_c engine."""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


def make_window(m, mode=clampi.Mode.ALWAYS_CACHE, nbytes=64 * KiB, **cfg_kwargs):
    cfg = clampi.Config(**cfg_kwargs) if cfg_kwargs else None
    win = clampi.window_allocate(m.comm_world, nbytes, mode=mode, config=cfg)
    win.local_view(np.uint8)[:] = (np.arange(nbytes) * (m.rank + 3)) % 251
    m.comm_world.barrier()
    return win


class TestHitMiss:
    def test_second_get_is_full_hit(self):
        def program(m):
            win = make_window(m)
            peer = (m.rank + 1) % m.size
            win.lock_all()
            buf = np.empty(256, np.uint8)
            win.get_blocking(buf, peer, 0)
            first = buf.copy()
            win.get_blocking(buf, peer, 0)
            win.unlock_all()
            assert np.array_equal(buf, first)
            return win.stats.snapshot()

        results, _ = run(2, program)
        for s in results:
            assert s["direct"] == 1
            assert s["hit_full"] == 1

    def test_hit_returns_correct_data(self):
        def program(m):
            win = make_window(m)
            peer = (m.rank + 1) % m.size
            expected = (np.arange(64 * KiB) * (peer + 3)) % 251
            win.lock_all()
            buf = np.empty(512, np.uint8)
            win.get_blocking(buf, peer, 1000)
            assert np.array_equal(buf, expected[1000:1512].astype(np.uint8))
            win.get_blocking(buf, peer, 1000)
            win.unlock_all()
            assert np.array_equal(buf, expected[1000:1512].astype(np.uint8))
            return True

        results, _ = run(4, program)
        assert all(results)

    def test_hit_is_faster_than_miss(self):
        def program(m):
            win = make_window(m)
            peer = (m.rank + 1) % m.size
            win.lock_all()
            buf = np.empty(4096, np.uint8)
            t0 = m.time
            win.get_blocking(buf, peer, 0)
            miss = m.time - t0
            t0 = m.time
            win.get_blocking(buf, peer, 0)
            hit = m.time - t0
            win.unlock_all()
            return miss, hit

        results, _ = run(2, program)
        for miss, hit in results:
            assert miss > 3 * hit

    def test_different_displacements_are_distinct_entries(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            buf = np.empty(64, np.uint8)
            for dsp in (0, 64, 128, 192):
                win.get_blocking(buf, 1, dsp)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["direct"] == 4
        assert results[0]["hit_full"] == 0

    def test_smaller_get_at_same_disp_is_full_hit(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            big = np.empty(1024, np.uint8)
            small = np.empty(100, np.uint8)
            win.get_blocking(big, 1, 0)
            win.get_blocking(small, 1, 0)
            win.unlock_all()
            assert np.array_equal(small, big[:100])
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_full"] == 1

    def test_larger_get_is_partial_hit_and_extends(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            small = np.empty(100, np.uint8)
            big = np.empty(1024, np.uint8)
            win.get_blocking(small, 1, 0)
            win.get_blocking(big, 1, 0)       # partial hit: refetch + extend
            win.get_blocking(big, 1, 0)       # now full hit on extended entry
            win.unlock_all()
            assert np.array_equal(big[:100], small)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["hit_partial"] == 1
        assert s["hit_full"] == 1

    def test_pending_hit_within_epoch(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            a = np.empty(512, np.uint8)
            b = np.empty(512, np.uint8)
            win.get(a, 1, 0)
            win.get(b, 1, 0)  # same data, same epoch: PENDING hit
            win.flush(1)
            win.unlock_all()
            assert np.array_equal(a, b)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["direct"] == 1
        assert s["hit_pending"] == 1
        assert s["bytes_from_network"] == 512

    def test_network_bytes_saved_by_hits(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            buf = np.empty(2048, np.uint8)
            for _ in range(10):
                win.get_blocking(buf, 1, 0)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["bytes_from_network"] == 2048       # one fetch
        assert s["bytes_from_cache"] == 9 * 2048     # nine hits


class TestModes:
    def test_transparent_invalidates_at_epoch_close(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.TRANSPARENT)
            win.lock_all()
            buf = np.empty(256, np.uint8)
            win.get_blocking(buf, 1, 0)
            win.get_blocking(buf, 1, 0)  # new epoch: cache was invalidated
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["hit_full"] == 0
        assert s["direct"] == 2

    def test_transparent_still_serves_intra_epoch(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.TRANSPARENT)
            win.lock_all()
            a = np.empty(256, np.uint8)
            b = np.empty(256, np.uint8)
            win.get(a, 1, 0)
            win.get(b, 1, 0)
            win.flush(1)
            win.unlock_all()
            assert np.array_equal(a, b)
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_pending"] == 1

    def test_always_cache_survives_epochs(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.ALWAYS_CACHE)
            win.lock_all()
            buf = np.empty(256, np.uint8)
            for _ in range(5):
                win.get_blocking(buf, 1, 0)
            win.unlock_all()
            m.comm_world.barrier()
            win.lock(1)
            win.get_blocking(buf, 1, 0)  # new lock epoch: still cached
            win.unlock(1)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["direct"] == 1
        assert s["hit_full"] == 5

    def test_user_defined_invalidate(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.USER_DEFINED)
            win.lock_all()
            buf = np.empty(256, np.uint8)
            win.get_blocking(buf, 1, 0)
            win.get_blocking(buf, 1, 0)
            clampi.invalidate(win)
            win.get_blocking(buf, 1, 0)  # must re-fetch
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["hit_full"] == 1
        assert s["direct"] == 2
        assert s["invalidations"] == 1

    def test_mode_via_info_key(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 1024, info={clampi.INFO_MODE_KEY: "always_cache"}
            )
            return win.mode

        results, _ = run(2, program)
        assert results == [clampi.Mode.ALWAYS_CACHE] * 2


class TestEvictionBehaviour:
    def test_capacity_eviction_on_small_storage(self):
        def program(m):
            # storage fits only ~4 entries of 1 KiB
            win = make_window(
                m,
                storage_bytes=4 * KiB,
                index_entries=256,
            )
            win.lock_all()
            buf = np.empty(KiB, np.uint8)
            for i in range(16):
                win.get_blocking(buf, 1, i * KiB)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["capacity"] + s["failing"] > 0
        assert s["evictions"] > 0

    def test_failing_when_request_exceeds_storage(self):
        def program(m):
            win = make_window(m, storage_bytes=1 * KiB, index_entries=64)
            win.lock_all()
            buf = np.empty(8 * KiB, np.uint8)
            win.get_blocking(buf, 1, 0)
            win.unlock_all()
            peer_pattern = (np.arange(8 * KiB) * 4) % 251
            assert np.array_equal(buf, peer_pattern.astype(np.uint8))
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["failing"] == 1
        assert s["direct"] == 0

    def test_conflicting_accesses_on_tiny_index(self):
        def program(m):
            win = make_window(m, index_entries=8, storage_bytes=1024 * KiB)
            win.lock_all()
            buf = np.empty(64, np.uint8)
            for i in range(200):
                win.get_blocking(buf, 1, i * 64)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["conflicting"] > 0

    def test_eviction_preserves_correctness(self):
        """Heavily-thrashed cache still returns byte-correct data."""

        def program(m):
            win = make_window(m, index_entries=16, storage_bytes=2 * KiB)
            expected = ((np.arange(64 * KiB) * 4) % 251).astype(np.uint8)
            win.lock_all()
            rng = np.random.default_rng(0)
            for _ in range(300):
                dsp = int(rng.integers(0, 63)) * KiB
                n = int(rng.integers(1, KiB))
                buf = np.empty(n, np.uint8)
                win.get_blocking(buf, 1, dsp)
                assert np.array_equal(buf, expected[dsp : dsp + n]), dsp
            win.unlock_all()
            return True

        results, _ = run(2, program)
        assert all(results)


class TestAdaptive:
    def test_adaptive_grows_index_under_conflicts(self):
        def program(m):
            win = make_window(
                m,
                index_entries=32,
                storage_bytes=1024 * KiB,
                adaptive=True,
                adaptive_params=clampi.AdaptiveParams(check_interval=128),
            )
            win.lock_all()
            buf = np.empty(64, np.uint8)
            for rounds in range(4):
                for i in range(500):
                    win.get_blocking(buf, 1, i * 64)
            win.unlock_all()
            return win.index_entries, win.stats.snapshot()

        results, _ = run(2, program)
        index_entries, s = results[0]
        assert index_entries > 32
        assert s["adjustments"] >= 1

    def test_adaptive_grows_storage_under_capacity_pressure(self):
        def program(m):
            win = make_window(
                m,
                index_entries=4096,
                storage_bytes=64 * KiB,
                adaptive=True,
                adaptive_params=clampi.AdaptiveParams(
                    check_interval=128, min_storage_bytes=1 * KiB
                ),
            )
            win.lock_all()
            buf = np.empty(KiB, np.uint8)
            for rounds in range(4):
                for i in range(63):
                    win.get_blocking(buf, 1, i * KiB)
            win.unlock_all()
            return win.storage_bytes, win.stats.snapshot()

        results, _ = run(2, program)
        storage_bytes, _s = results[0]
        # 63 KiB working set with alignment overhead does not fit 64 KiB of
        # storage forever; the controller should have grown it.
        assert storage_bytes >= 64 * KiB

    def test_fixed_strategy_never_adjusts(self):
        def program(m):
            win = make_window(m, index_entries=32, adaptive=False)
            win.lock_all()
            buf = np.empty(64, np.uint8)
            for i in range(2000):
                win.get_blocking(buf, 1, (i % 500) * 64)
            win.unlock_all()
            return win.index_entries, win.stats.snapshot()["adjustments"]

        results, _ = run(2, program)
        assert results[0] == (32, 0)


class TestMiscSemantics:
    def test_put_passthrough_not_cached(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            data = np.arange(16, dtype=np.uint8)
            win.put(data, 1, 0)
            win.flush(1)
            win.unlock_all()
            return win.stats.snapshot()["gets"]

        results, _ = run(2, program)
        assert results[0] == 0

    def test_epoch_counter_proxied(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            buf = np.empty(8, np.uint8)
            win.get_blocking(buf, 1, 0)
            win.get_blocking(buf, 1, 8)
            win.unlock_all()
            return win.eph

        results, _ = run(2, program)
        assert results[0] == 3  # two flushes + unlock_all

    def test_zero_byte_get(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            buf = np.empty(0, np.uint8)
            n = win.get_blocking(buf, 1, 0)
            n2 = win.get_blocking(buf, 1, 0)
            win.unlock_all()
            return n, n2

        results, _ = run(2, program)
        assert results[0] == (0, 0)

    def test_epoch_rules_enforced_through_cache(self):
        from repro.mpi import EpochError
        from repro.runtime import RankFailedError

        def program(m):
            win = make_window(m)
            buf = np.empty(8, np.uint8)
            win.get(buf, 1, 0)  # no epoch open

        with pytest.raises(RankFailedError) as ei:
            run(2, program)
        assert isinstance(ei.value.original, EpochError)

    def test_stats_partition_is_exhaustive(self):
        """Every get is classified exactly once."""

        def program(m):
            win = make_window(m, index_entries=32, storage_bytes=8 * KiB)
            win.lock_all()
            rng = np.random.default_rng(7)
            n_gets = 400
            for _ in range(n_gets):
                dsp = int(rng.integers(0, 60)) * KiB
                n = int(rng.integers(1, 2 * KiB))
                buf = np.empty(n, np.uint8)
                win.get_blocking(buf, 1, dsp)
            win.unlock_all()
            s = win.stats.total
            assert s.gets == n_gets
            assert s.hits + s.misses == n_gets
            return True

        results, _ = run(2, program)
        assert all(results)
