"""Tests for the shared diagnostics engine (repro.analysis.diagnostics).

Diagnostic records and fingerprints, the suppression index, the SARIF /
json / text emitters (SARIF checked structurally against the 2.1.0
shape), the fingerprint baseline, the incremental cache, the generated
docs rule table (drift test), and the extended CLI plumbing.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.diagnostics import (
    RULES,
    SARIF_SCHEMA_URI,
    AnalysisCache,
    Baseline,
    Diagnostic,
    Related,
    SuppressionIndex,
    docs_in_sync,
    render,
    rules_markdown,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def diag(path="repro/x.py", line=3, rule="ANL005", message="mutable default",
         **kw):
    return Diagnostic(path, line, rule, message, **kw)


class TestDiagnostic:
    def test_positional_construction_and_render_compatible(self):
        d = Diagnostic("a.py", 7, "ANL001", "wall clock")
        assert d.render() == "a.py:7: ANL001 wall clock"

    def test_severity_comes_from_registry(self):
        assert diag(rule="ANL001").severity == "error"
        assert diag(rule="ANL013").severity == "warning"

    def test_render_full_includes_related_and_fix(self):
        d = diag(
            related=(Related("a.py", 1, "epoch opened here"),),
            fix="close it",
        )
        full = d.render_full()
        assert "a.py:1: note: epoch opened here" in full
        assert "fix: close it" in full

    def test_fingerprint_tolerates_line_drift(self):
        a = diag(line=3)
        b = diag(line=40)
        c = diag(message="something else")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_dict_roundtrip(self):
        d = diag(related=(Related("b.py", 2, "note"),), fix="hint")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_every_rule_has_url_and_docs_anchor(self):
        table = rules_markdown()
        for code, rule in RULES.items():
            assert rule.url.endswith(f"#{code.lower()}")
            assert f'<a id="{code.lower()}"></a>' in table


class TestSuppressionIndex:
    def test_line_and_file_allows_parsed(self):
        src = (
            "# analysis: allow-file(ANL003)\n"
            "x = 1  # analysis: allow(ANL001, ANL005)\n"
        )
        supp = SuppressionIndex("x.py", src)
        assert supp.line_allows == {2: {"ANL001", "ANL005"}}
        assert supp.file_allows == {"ANL003": 1}

    def test_unused_scoped_to_evaluated_rules(self):
        supp = SuppressionIndex("x.py", "x = 1  # analysis: allow(ANL001)\n")
        supp.filter([])
        assert supp.unused({"ANL005"}) == []          # ANL001 never ran
        warned = supp.unused({"ANL001"})
        assert [w.rule for w in warned] == ["ANL013"]

    def test_used_allow_not_warned(self):
        supp = SuppressionIndex("x.py", "x = 1  # analysis: allow(ANL005)\n")
        kept = supp.filter([diag(path="x.py", line=1)])
        assert kept == []
        assert supp.unused({"ANL005"}) == []


class TestEmitters:
    def test_json_roundtrips(self):
        d = diag(related=(Related("b.py", 2, "note"),))
        data = json.loads(render([d], "json"))
        assert data[0]["rule"] == "ANL005"
        assert data[0]["related"][0]["line"] == 2
        assert data[0]["fingerprint"] == d.fingerprint()

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown format"):
            render([], "xml")

    def test_sarif_2_1_0_structure(self):
        d = diag(related=(Related("b.py", 2, "pending get issued here"),))
        log = json.loads(render([d], "sarif"))
        # required top-level shape per the 2.1.0 schema
        assert log["version"] == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA_URI
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        assert {r["id"] for r in driver["rules"]} == set(RULES)
        for r in driver["rules"]:
            assert r["shortDescription"]["text"]
            assert r["defaultConfiguration"]["level"] in ("error", "warning")
        (result,) = run["results"]
        assert result["ruleId"] == "ANL005"
        assert result["level"] == "error"
        assert result["message"]["text"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/x.py"
        assert loc["region"]["startLine"] == 3
        rel = result["relatedLocations"][0]
        assert rel["message"]["text"] == "pending get issued here"
        assert result["partialFingerprints"]["reproAnalysis/v1"]

    def test_sarif_results_reference_registered_rules_only(self):
        log = json.loads(render([diag()], "sarif"))
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert all(r["ruleId"] in rule_ids for r in run["results"])


class TestBaseline:
    def test_roundtrip_and_filter(self, tmp_path):
        known = diag()
        fresh = diag(message="new finding")
        base = Baseline.from_diagnostics([known])
        path = tmp_path / "baseline.json"
        base.write(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.filter([known, fresh]) == [fresh]

    def test_missing_file_is_empty(self, tmp_path):
        base = Baseline.load(tmp_path / "nope.json")
        assert len(base) == 0
        assert base.filter([diag()]) == [diag()]

    def test_version_mismatch_rejected(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text('{"version": 99, "fingerprints": {}}')
        with pytest.raises(ValueError, match="unsupported version"):
            Baseline.load(p)

    def test_checked_in_baseline_is_loadable_and_empty(self):
        base = Baseline.load(REPO / "analysis-baseline.json")
        assert len(base) == 0


class TestAnalysisCache:
    def test_hit_and_content_invalidation(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("x = 1\n")
        salt = AnalysisCache.make_salt("test")
        cache = AnalysisCache(tmp_path / "cache.json", salt)
        assert cache.get(f, f.read_text()) is None
        cache.put(f, f.read_text(), [diag(path=str(f))])
        assert cache.get(f, f.read_text()) == [diag(path=str(f))]
        cache.save()

        reloaded = AnalysisCache(tmp_path / "cache.json", salt)
        assert reloaded.get(f, f.read_text()) == [diag(path=str(f))]
        f.write_text("x = 2\n")
        assert reloaded.get(f, f.read_text()) is None

    def test_salt_change_invalidates_whole_cache(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("x = 1\n")
        cache = AnalysisCache(
            tmp_path / "cache.json", AnalysisCache.make_salt("a")
        )
        cache.put(f, f.read_text(), [])
        cache.save()
        other = AnalysisCache(
            tmp_path / "cache.json", AnalysisCache.make_salt("b")
        )
        assert other.get(f, f.read_text()) is None


class TestDocsSync:
    def test_docs_rule_table_in_sync_with_registry(self):
        # regenerate with `python -m repro.analysis rules --write-docs`
        assert docs_in_sync(REPO / "docs" / "analysis.md")


class TestCLI:
    def test_verify_exit_codes(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(mpi, spec):\n"
            "    win = spec.make_window(mpi.comm_world, local)\n"
            "    win.lock_all()\n"
            "    return 0\n"
        )
        assert main(["verify", str(tmp_path)]) == 1
        assert "ANL009" in capsys.readouterr().out
        assert main(["verify", str(SRC / "repro")]) == 0

    def test_verify_sarif_out_and_baseline_flow(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(mpi, spec):\n"
            "    win = spec.make_window(mpi.comm_world, local)\n"
            "    win.lock_all()\n"
            "    return 0\n"
        )
        sarif = tmp_path / "report.sarif"
        baseline = tmp_path / "baseline.json"

        # accept the current findings into a baseline
        assert main(["verify", str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        # with the baseline applied the run is clean, artifact still written
        assert main(["verify", str(bad), "--baseline", str(baseline),
                     "--format", "sarif", "--out", str(sarif)]) == 0
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []

    def test_verify_cache_round_trip(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")  # lint-bad, verify-ok
        cache = tmp_path / "cache.json"
        assert main(["verify", str(bad), "--cache", str(cache)]) == 0
        assert cache.exists()
        assert main(["verify", str(bad), "--cache", str(cache)]) == 0
        capsys.readouterr()

    def test_rules_check_passes_on_synced_docs(self, capsys, monkeypatch):
        from repro.analysis.__main__ import main

        monkeypatch.chdir(REPO)
        assert main(["rules", "--check"]) == 0
        capsys.readouterr()

    def test_warning_only_findings_do_not_fail(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        f = tmp_path / "repro" / "core" / "x.py"
        f.parent.mkdir(parents=True)
        f.write_text("x = 1  # analysis: allow(ANL005)\n")
        assert main(["lint", str(tmp_path)]) == 0  # ANL013 is a warning
        assert "ANL013" in capsys.readouterr().out
