"""Unit tests for Dragonfly-like topology and distance classification."""

import pytest

from repro.net import Distance, Topology


class TestPlacement:
    def test_one_rank_per_node(self):
        topo = Topology(nprocs=8, ranks_per_node=1)
        assert [topo.node_of(r) for r in range(8)] == list(range(8))

    def test_packed_ranks(self):
        topo = Topology(nprocs=8, ranks_per_node=4)
        assert topo.node_of(0) == topo.node_of(3) == 0
        assert topo.node_of(4) == topo.node_of(7) == 1

    def test_chassis_and_group(self):
        topo = Topology(nprocs=256, nodes_per_chassis=16, chassis_per_group=6)
        assert topo.chassis_of(0) == 0
        assert topo.chassis_of(16) == 1
        assert topo.group_of(16 * 6 - 1) == 0
        assert topo.group_of(16 * 6) == 1


class TestDistance:
    def test_self(self):
        topo = Topology(nprocs=4)
        assert topo.distance(2, 2) is Distance.SELF

    def test_same_node(self):
        topo = Topology(nprocs=4, ranks_per_node=2)
        assert topo.distance(0, 1) is Distance.SAME_NODE

    def test_same_chassis(self):
        topo = Topology(nprocs=32)
        assert topo.distance(0, 15) is Distance.SAME_CHASSIS

    def test_same_group(self):
        topo = Topology(nprocs=256)
        assert topo.distance(0, 16) is Distance.SAME_GROUP

    def test_remote_group(self):
        topo = Topology(nprocs=256)
        assert topo.distance(0, 16 * 6) is Distance.REMOTE_GROUP

    def test_symmetry(self):
        topo = Topology(nprocs=200, ranks_per_node=2)
        for a, b in [(0, 1), (0, 31), (3, 190), (17, 100)]:
            assert topo.distance(a, b) is topo.distance(b, a)

    def test_distance_ordering_monotone(self):
        assert (
            Distance.SELF
            < Distance.SAME_NODE
            < Distance.SAME_CHASSIS
            < Distance.SAME_GROUP
            < Distance.REMOTE_GROUP
        )

    def test_out_of_range_rank(self):
        topo = Topology(nprocs=4)
        with pytest.raises(ValueError):
            topo.distance(0, 4)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Topology(nprocs=0)
        with pytest.raises(ValueError):
            Topology(nprocs=4, ranks_per_node=0)
