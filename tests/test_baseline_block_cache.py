"""Unit tests for the native block-cache baseline."""

import numpy as np
import pytest

from repro.baselines import BlockCachedWindow
from repro.mpi import SimMPI, Window
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


def make_cache(m, nbytes=16 * KiB, block_size=256, memory_bytes=2 * KiB):
    raw = Window.allocate(m.comm_world, nbytes)
    raw.local_buffer[:] = ((np.arange(nbytes) * (m.rank + 2)) % 255).astype(np.uint8)
    cache = BlockCachedWindow(raw, block_size=block_size, memory_bytes=memory_bytes)
    m.comm_world.barrier()
    return cache


class TestCorrectness:
    def test_roundtrip_and_hits(self):
        def program(m):
            c = make_cache(m)
            expected = ((np.arange(16 * KiB) * 3) % 255).astype(np.uint8)
            c.lock_all()
            buf = np.empty(100, np.uint8)
            c.get_blocking(buf, 1, 50)
            assert np.array_equal(buf, expected[50:150])
            c.get_blocking(buf, 1, 50)  # same block: hit
            assert np.array_equal(buf, expected[50:150])
            c.unlock_all()
            return c.stats.block_hits, c.stats.block_misses

        results, _ = run(2, program)
        hits, misses = results[0]
        assert misses == 1
        assert hits == 1

    def test_multi_block_request(self):
        def program(m):
            c = make_cache(m, block_size=64)
            expected = ((np.arange(16 * KiB) * 3) % 255).astype(np.uint8)
            c.lock_all()
            buf = np.empty(300, np.uint8)  # spans ~5-6 blocks
            c.get_blocking(buf, 1, 30)
            c.unlock_all()
            assert np.array_equal(buf, expected[30:330])
            return c.stats.block_misses

        results, _ = run(2, program)
        assert results[0] >= 5

    def test_random_workload_correct(self):
        def program(m):
            c = make_cache(m, memory_bytes=1 * KiB)  # tiny: force conflicts
            expected = ((np.arange(16 * KiB) * 3) % 255).astype(np.uint8)
            rng = np.random.default_rng(4)
            c.lock_all()
            for _ in range(300):
                dsp = int(rng.integers(0, 15 * KiB))
                n = int(rng.integers(1, 700))
                buf = np.empty(n, np.uint8)
                c.get_blocking(buf, 1, dsp)
                assert np.array_equal(buf, expected[dsp : dsp + n])
            c.unlock_all()
            return True

        results, _ = run(2, program)
        assert all(results)

    def test_invalidate_forces_refetch(self):
        def program(m):
            c = make_cache(m)
            buf = np.empty(64, np.uint8)
            c.lock_all()
            c.get_blocking(buf, 1, 0)
            c.invalidate()
            c.get_blocking(buf, 1, 0)
            c.unlock_all()
            return c.stats.block_misses, c.stats.invalidations

        results, _ = run(2, program)
        assert results[0] == (2, 1)

    def test_put_passthrough(self):
        def program(m):
            c = make_cache(m)
            c.lock_all()
            data = np.full(16, 9, np.uint8)
            c.put(data, 1, 0)
            c.flush(1)
            c.unlock_all()
            m.comm_world.barrier()
            return c.local_buffer[:16].tolist() if m.rank == 1 else None

        results, _ = run(2, program)
        assert results[1] == [9] * 16


class TestBehaviour:
    def test_direct_mapping_conflicts_with_small_memory(self):
        """Alternating two conflicting blocks thrashes a direct-mapped cache."""

        def program(m):
            c = make_cache(m, nbytes=64 * KiB, block_size=256, memory_bytes=512)
            # two slots only: find two displacements mapping to the same slot
            blocks = list(range(0, 64 * KiB // 256))
            slots = {}
            a = b = None
            for blk in blocks:
                s = c._slot(1, blk)
                if s in slots:
                    a, b = slots[s], blk
                    break
                slots[s] = blk
            assert a is not None
            buf = np.empty(256, np.uint8)
            c.lock_all()
            for _ in range(10):
                c.get_blocking(buf, 1, a * 256)
                c.get_blocking(buf, 1, b * 256)
            c.unlock_all()
            return c.stats.block_misses

        results, _ = run(2, program)
        assert results[0] == 20  # every access misses: pure thrash

    def test_more_memory_fewer_conflicts(self):
        def workload(m, memory_bytes):
            c = make_cache(m, nbytes=32 * KiB, block_size=256, memory_bytes=memory_bytes)
            rng = np.random.default_rng(1)
            hot = rng.integers(0, 31 * KiB, size=40)
            buf = np.empty(256, np.uint8)
            c.lock_all()
            for _ in range(10):
                for d in hot:
                    c.get_blocking(buf, 1, int(d))
            c.unlock_all()
            return c.stats.block_misses

        small, _ = run(2, lambda m: workload(m, 1 * KiB))
        large, _ = run(2, lambda m: workload(m, 64 * KiB))
        assert large[0] < small[0]

    def test_internal_fragmentation_fetches_whole_blocks(self):
        def program(m):
            c = make_cache(m, block_size=1024)
            buf = np.empty(10, np.uint8)  # tiny request
            c.lock_all()
            c.get_blocking(buf, 1, 0)
            c.unlock_all()
            return c.stats.bytes_fetched

        results, _ = run(2, program)
        assert results[0] == 1024  # whole block moved for 10 bytes

    def test_disp_unit_rejected(self):
        def program(m):
            raw = Window.allocate(m.comm_world, 64, disp_unit=8)
            BlockCachedWindow(raw)

        from repro.runtime import RankFailedError

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_invalid_construction(self):
        def program(m):
            raw = Window.allocate(m.comm_world, 64)
            BlockCachedWindow(raw, block_size=128, memory_bytes=64)

        from repro.runtime import RankFailedError

        with pytest.raises(RankFailedError):
            run(1, program)
