"""Tests for the flow-sensitive epoch/flush typestate verifier.

Covers the abstract interpreter on small snippets (every rule, plus the
join/loop/exception-edge machinery), the interprocedural one-level
summaries, the seeded fixtures under ``tests/fixtures/buggy_static/``,
and — the repo invariant itself — that ``src/repro`` and ``examples``
verify clean.
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis.typestate import run_verify, verify_source

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "fixtures" / "buggy_static"


def verify_snippet(code: str):
    tree = ast.parse(textwrap.dedent(code))
    return verify_source(tree, "snippet.py")


def rules_of(diags):
    return sorted({d.rule for d in diags})


class TestEpochLeak:
    def test_leak_on_straight_line_return(self):
        diags = verify_snippet(
            """
            def f(mpi, spec):
                win = spec.make_window(mpi.comm_world, buf)
                win.lock(1)
                return 0
            """
        )
        assert rules_of(diags) == ["ANL009"]
        assert diags[0].line == 4  # primary span = the open site
        assert diags[0].related  # related span = where the path leaves

    def test_leak_on_one_branch_only(self):
        diags = verify_snippet(
            """
            def f(win, flag):
                win.lock_all()
                if flag:
                    return None
                win.unlock_all()
            """
        )
        assert rules_of(diags) == ["ANL009"]

    def test_leak_on_exception_edge(self):
        diags = verify_snippet(
            """
            def f(win, n):
                win.lock_all()
                if n > 64:
                    raise ValueError(n)
                win.unlock_all()
            """
        )
        assert rules_of(diags) == ["ANL009"]
        assert "exception" in diags[0].message

    def test_balanced_paths_clean(self):
        diags = verify_snippet(
            """
            def f(win, skip):
                win.lock(0)
                if skip:
                    win.unlock(0)
                    return None
                win.get(buf, 0, 0)
                win.flush(0)
                win.unlock(0)
                return 1
            """
        )
        assert diags == []

    def test_try_finally_unlock_clean(self):
        diags = verify_snippet(
            """
            def f(win, n):
                win.lock_all()
                try:
                    if n > 64:
                        raise ValueError(n)
                    win.get(buf, 0, 0)
                finally:
                    win.unlock_all()
            """
        )
        assert diags == []

    def test_with_epoch_covers_exception_path(self):
        diags = verify_snippet(
            """
            def f(win, n):
                with win.lock_all_epoch():
                    if n > 64:
                        raise ValueError(n)
                    win.get(buf, 0, 0)
                    win.flush_all()
            """
        )
        assert diags == []

    def test_pscw_start_without_complete(self):
        # `start`/`put` alone are too generic to count as window
        # evidence; provenance tracking (make_window) enables the check
        diags = verify_snippet(
            """
            def f(mpi, spec, group, buf):
                win = spec.make_window(mpi.comm_world, local)
                win.start(group)
                win.put(buf, 0, 0)
            """
        )
        assert "ANL009" in rules_of(diags)

    def test_fence_epoch_at_exit_is_not_a_leak(self):
        # fence epochs are closed by the *next* fence; an open fence at
        # scope exit is idiomatic
        diags = verify_snippet(
            """
            def f(win):
                win.fence()
                win.get(buf, 0, 0)
                win.fence()
            """
        )
        assert diags == []

    def test_loop_balanced_lock_unlock_clean(self):
        diags = verify_snippet(
            """
            def f(win, peers):
                for p in peers:
                    win.lock(p)
                    win.get(buf, p, 0)
                    win.flush(p)
                    win.unlock(p)
            """
        )
        assert diags == []


class TestReadBeforeFlush:
    def test_subscript_read_flagged(self):
        diags = verify_snippet(
            """
            import numpy as np
            def f(win):
                buf = np.empty(8)
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    x = buf[0]
                    win.flush_all()
                return x
            """
        )
        assert rules_of(diags) == ["ANL010"]
        assert diags[0].related  # points at the pending get

    def test_read_after_flush_clean(self):
        diags = verify_snippet(
            """
            import numpy as np
            def f(win):
                buf = np.empty(8)
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    win.flush_all()
                    x = buf[0]
                return x
            """
        )
        assert diags == []

    def test_epoch_close_completes_pending(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                win.lock_all()
                win.get(buf, 0, 0)
                win.unlock_all()
                return buf[0]
            """
        )
        assert diags == []

    def test_get_blocking_completes_immediately(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                with win.lock_all_epoch():
                    win.get_blocking(buf, 0, 0)
                    return buf[0]
            """
        )
        assert diags == []

    def test_np_consumer_flagged(self):
        diags = verify_snippet(
            """
            import numpy as np
            def f(win, buf):
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    s = np.sum(buf)
                    win.flush_all()
                return s
            """
        )
        assert rules_of(diags) == ["ANL010"]

    def test_pending_get_as_put_origin_flagged(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    win.put(buf, 1, 0)
                    win.flush_all()
            """
        )
        assert rules_of(diags) == ["ANL010"]

    def test_loop_reuse_without_flush_flagged(self):
        diags = verify_snippet(
            """
            def f(win, buf, peers):
                with win.lock_all_epoch():
                    for p in peers:
                        win.get(buf, p, 0)
                    win.flush_all()
            """
        )
        assert rules_of(diags) == ["ANL010"]

    def test_flush_only_specific_window(self):
        # flushing win_a must not retire ops pending on win_b
        diags = verify_snippet(
            """
            def f(win_a, win_b, buf):
                win_a.lock_all()
                win_b.lock_all()
                win_b.get(buf, 0, 0)
                win_a.flush_all()
                x = buf[0]
                win_a.unlock_all()
                win_b.unlock_all()
                return x
            """
        )
        assert rules_of(diags) == ["ANL010"]

    def test_request_wait_completes(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                with win.lock_all_epoch():
                    req = win.rget(buf, 0, 0)
                    req.wait()
                    return buf[0]
            """
        )
        assert diags == []

    def test_rget_read_without_wait_flagged(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                with win.lock_all_epoch():
                    req = win.rget(buf, 0, 0)
                    x = buf[0]
                    req.wait()
                return x
            """
        )
        assert rules_of(diags) == ["ANL010"]


class TestOriginReuse:
    def test_subscript_store_flagged(self):
        diags = verify_snippet(
            """
            def f(win, stage, updates):
                with win.lock_all_epoch():
                    for peer, value in updates:
                        stage[:] = value
                        win.put(stage, peer, 0)
                    win.flush_all()
            """
        )
        assert rules_of(diags) == ["ANL011"]

    def test_flush_between_puts_clean(self):
        diags = verify_snippet(
            """
            def f(win, stage, updates):
                with win.lock_all_epoch():
                    for peer, value in updates:
                        stage[:] = value
                        win.put(stage, peer, 0)
                        win.flush(peer)
            """
        )
        assert diags == []

    def test_reading_pending_put_origin_is_fine(self):
        # MPI allows *reading* a put origin; only writes are hazards
        diags = verify_snippet(
            """
            def f(win, stage):
                with win.lock_all_epoch():
                    win.put(stage, 0, 0)
                    x = stage[0]
                    win.flush_all()
                return x
            """
        )
        assert diags == []


class TestOpOutsideEpoch:
    def test_op_before_any_lock_flagged(self):
        diags = verify_snippet(
            """
            def f(mpi, spec, buf):
                win = spec.make_window(mpi.comm_world, local)
                win.get(buf, 0, 0)
            """
        )
        assert "ANL012" in rules_of(diags)

    def test_op_after_unlock_flagged(self):
        diags = verify_snippet(
            """
            def f(win, buf):
                win.lock_all()
                win.unlock_all()
                win.get(buf, 0, 0)
            """
        )
        assert "ANL012" in rules_of(diags)

    def test_unknown_entry_state_not_flagged(self):
        # a window parameter arrives in unknown state: the caller may
        # hold the epoch, so no ANL012
        diags = verify_snippet(
            """
            def f(win, buf):
                win.get(buf, 0, 0)
                win.flush_all()
            """
        )
        assert diags == []

    def test_partially_open_path_mentions_path(self):
        diags = verify_snippet(
            """
            def f(mpi, spec, buf, peek):
                win = spec.make_window(mpi.comm_world, local)
                if peek:
                    win.lock_all()
                win.get(buf, 0, 0)
                win.flush_all()
                win.unlock_all()
            """
        )
        anl12 = [d for d in diags if d.rule == "ANL012"]
        assert anl12 and "path" in anl12[0].message


class TestInterprocedural:
    def test_helper_flush_retires_pending(self):
        diags = verify_snippet(
            """
            def complete(win):
                win.flush_all()

            def f(win, buf):
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    complete(win)
                    return buf[0]
            """
        )
        assert diags == []

    def test_bound_method_arg_assumed_invoked(self):
        diags = verify_snippet(
            """
            from repro import recovery

            def f(win, buf):
                with win.lock_all_epoch():
                    win.get(buf, 0, 0)
                    recovery.retrying(win.flush_all)
                    return buf[0]
            """
        )
        assert diags == []

    def test_helper_needing_epoch_flagged_at_closed_call_site(self):
        diags = verify_snippet(
            """
            def fetch(win, buf):
                win.get(buf, 0, 0)
                win.flush_all()

            def f(mpi, spec, buf):
                win = spec.make_window(mpi.comm_world, local)
                fetch(win, buf)
            """
        )
        assert "ANL012" in rules_of(diags)

    def test_helper_opening_epoch_propagates_to_caller(self):
        diags = verify_snippet(
            """
            def acquire(win):
                win.lock_all()

            def f(mpi, spec):
                win = spec.make_window(mpi.comm_world, local)
                acquire(win)
                return 0
            """
        )
        # the helper's lock_all leaks through f's return
        assert "ANL009" in rules_of(diags)

    def test_unknown_callee_havocs_not_flags(self):
        diags = verify_snippet(
            """
            def f(mpi, spec, buf):
                win = spec.make_window(mpi.comm_world, local)
                mystery_setup(win)
                win.get(buf, 0, 0)
                win.flush_all()
            """
        )
        assert diags == []

    def test_nested_closure_over_window_not_flagged(self):
        # free-variable windows may be closed by the enclosing scope
        diags = verify_snippet(
            """
            def f(win, buf):
                def fetch(peer):
                    win.get(buf, peer, 0)
                    win.flush(peer)
                    return buf[0]
                with win.lock_all_epoch():
                    return fetch(1)
            """
        )
        assert diags == []


class TestFixtures:
    EXPECT = {
        "leak_exception.py": "ANL009",
        "read_before_flush.py": "ANL010",
        "origin_reuse.py": "ANL011",
        "op_outside_epoch.py": "ANL012",
    }

    def test_every_seeded_fixture_flags_its_rule(self):
        for name, rule in self.EXPECT.items():
            diags = run_verify([FIXTURES / name])
            assert rule in rules_of(diags), (
                f"{name}: expected {rule}, got {rules_of(diags)}"
            )

    def test_clean_fixture_has_zero_findings(self):
        assert run_verify([FIXTURES / "clean_app.py"]) == []

    def test_buggy_apps_dynamic_fixtures_cross_checked(self):
        # the dynamic sanitizer's fixture file: the static verifier must
        # catch the statically-visible bugs (leaked epoch, missing flush)
        # and stay silent on the race/stale programs (data-dependent,
        # dynamic-only)
        diags = run_verify([REPO / "tests" / "test_analysis_buggy_apps.py"])
        assert rules_of(diags) == ["ANL009", "ANL010"]


class TestTreeInvariant:
    def test_src_tree_verifies_clean(self):
        assert run_verify([SRC / "repro"]) == []

    def test_examples_verify_clean(self):
        assert run_verify([REPO / "examples"]) == []

    def test_recovery_helpers_false_positive_free(self):
        assert run_verify([SRC / "repro" / "recovery"]) == []
