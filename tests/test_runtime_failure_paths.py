"""Failure paths of the runtime and MPI layers.

Exercises the error reporting the happy-path suite never touches: original
tracebacks carried through ``RankFailedError``, deadlocks from partial
synchronisation, epoch violations surfacing mid-application, and — new with
the ``join_timeout`` machinery — rank threads that hang outright instead of
terminating after the run settles.
"""

import threading

import numpy as np
import pytest

from repro.mpi import SimMPI, Window
from repro.mpi.errors import EpochError
from repro.runtime import DeadlockError, RankFailedError, SimWorld


class TestRankFailurePropagation:
    def test_original_exception_and_traceback_preserved(self):
        def program(proc):
            proc.advance(1e-6)
            if proc.rank == 2:
                raise KeyError("boom at rank 2")
            proc.sync()

        with pytest.raises(RankFailedError) as ei:
            SimWorld(nprocs=4).run(program)
        err = ei.value
        assert err.rank == 2
        assert isinstance(err.original, KeyError)
        assert err.__cause__ is err.original
        # The original traceback must point into the rank program.
        tb = err.original.__traceback__
        frames = []
        while tb is not None:
            frames.append(tb.tb_frame.f_code.co_name)
            tb = tb.tb_next
        assert "program" in frames

    def test_epoch_violation_mid_application(self):
        """An MPI epoch bug in one rank surfaces as that rank's failure."""

        def program(mpi):
            win = Window.allocate(mpi.comm_world, 256)
            mpi.comm_world.barrier()
            buf = np.empty(4)
            if mpi.rank == 1:
                # get without any epoch open: an RMA synchronisation bug.
                win.get(buf, 0, 0)
            mpi.comm_world.barrier()

        with pytest.raises(RankFailedError) as ei:
            SimMPI(nprocs=2).run(program)
        assert ei.value.rank == 1
        assert isinstance(ei.value.original, EpochError)


class TestPartialSyncDeadlock:
    def test_partial_sync_is_a_deadlock_not_a_hang(self):
        def program(proc):
            if proc.rank == 0:
                return "early"
            proc.sync()

        with pytest.raises(DeadlockError, match="can never complete"):
            SimWorld(nprocs=3).run(program)

    def test_mpi_collective_with_missing_rank(self):
        def program(mpi):
            if mpi.rank != 0:
                mpi.comm_world.barrier()

        with pytest.raises(DeadlockError):
            SimMPI(nprocs=3).run(program)


class TestHungThreadDetection:
    def test_join_timeout_validation(self):
        with pytest.raises(ValueError):
            SimWorld(nprocs=1, join_timeout=0.0)

    def test_hung_rank_raises_deadlock_with_rank_state(self):
        """A rank swallowing the abort and blocking on a real OS primitive
        must be reported, not silently ignored (the old behaviour)."""
        release = threading.Event()

        def program(proc):
            if proc.rank == 0:
                return "done"
            try:
                proc.sync()  # partial sync: the world aborts this rank
            except BaseException:
                release.wait()  # swallow the abort and hang for real

        world = SimWorld(nprocs=2, join_timeout=0.5)
        try:
            with pytest.raises(DeadlockError) as ei:
                world.run(program)
            msg = str(ei.value)
            assert "did not terminate within 0.5s" in msg
            assert "rank 1" in msg
            assert "clock=" in msg
            # The original scheduler diagnosis is preserved alongside.
            assert "can never complete" in msg
        finally:
            release.set()  # let the daemon thread exit

    def test_recorded_failure_outranks_hung_siblings(self):
        release = threading.Event()

        def program(proc):
            if proc.rank == 0:
                raise ValueError("real failure")
            try:
                proc.sync()
            except BaseException:
                release.wait()

        world = SimWorld(nprocs=2, join_timeout=0.5)
        try:
            with pytest.raises(RankFailedError) as ei:
                world.run(program)
            assert ei.value.rank == 0
            assert isinstance(ei.value.original, ValueError)
        finally:
            release.set()

    def test_simmpi_forwards_join_timeout(self):
        mpi = SimMPI(nprocs=2, join_timeout=0.25)
        assert mpi.join_timeout == 0.25
        mpi.run(lambda p: p.comm_world.barrier())  # normal runs unaffected


class TestFailureDiagnostics:
    """Failure reports carry per-rank context (docs/resilience.md)."""

    def test_rank_failure_includes_epoch_state(self):
        def program(mpi):
            win = Window.allocate(mpi.comm_world, 128)
            mpi.comm_world.barrier()
            win.lock_all()
            if mpi.rank == 0:
                raise RuntimeError("mid-epoch failure")
            win.unlock_all()
            mpi.comm_world.barrier()

        with pytest.raises(RankFailedError) as ei:
            SimMPI(nprocs=2).run(program)
        msg = str(ei.value)
        assert "rank 0:" in msg
        assert "lock_all held" in msg  # the open epoch at the failure
        assert "epochs concluded" in msg

    def test_no_capture_reports_last_event_unknown(self):
        def program(proc):
            raise ValueError("nope")

        with pytest.raises(RankFailedError) as ei:
            SimWorld(nprocs=1).run(program)
        assert "last event unknown (no obs capture active)" in str(ei.value)

    def test_active_capture_reports_last_event(self):
        from repro import obs

        def program(mpi):
            win = Window.allocate(mpi.comm_world, 128)
            mpi.comm_world.barrier()
            buf = np.empty(4)
            with win.lock_epoch(1 - mpi.rank):
                win.get(buf, 1 - mpi.rank, 0)
                win.flush(1 - mpi.rank)
            if mpi.rank == 1:
                raise RuntimeError("after the transfer")
            mpi.comm_world.barrier()

        with obs.capture():
            with pytest.raises(RankFailedError) as ei:
                SimMPI(nprocs=2).run(program)
        msg = str(ei.value)
        assert "rank 1: last event" in msg
        assert "@t=" in msg

    def test_deadlock_diagnostics_name_each_hung_rank(self):
        def program(mpi):
            win = Window.allocate(mpi.comm_world, 64)
            mpi.comm_world.barrier()
            win.lock_all()  # never closed
            if mpi.rank != 0:
                mpi.comm_world.barrier()  # rank 0 missing: deadlock

        with pytest.raises(DeadlockError) as ei:
            SimMPI(nprocs=2).run(program)
        msg = str(ei.value)
        assert "rank 1:" in msg
        assert "lock_all held" in msg

    def test_broken_diagnostic_does_not_mask_failure(self):
        def program(proc):
            def broken():
                raise RuntimeError("diagnostic bug")

            proc.add_diagnostic(broken)
            raise KeyError("the real failure")

        with pytest.raises(RankFailedError) as ei:
            SimWorld(nprocs=1).run(program)
        msg = str(ei.value)
        assert isinstance(ei.value.original, KeyError)
        assert "<diagnostic failed:" in msg
