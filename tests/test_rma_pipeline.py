"""The descriptor + interceptor pipeline and batched gets.

Pins the tentpole contracts of the ``repro.rma`` refactor:

* ``get_batch`` of N same-target gets is **bit-identical in virtual
  time** to N scalar gets followed by the same flush (every element is
  priced through the full pipeline; only the bookkeeping is batched);
* the batch emits exactly **one** ``rma.get_batch`` accounting event
  (carrying per-op sanitizer footprints) instead of N ``rma.get``
  events, and the CLaMPI layer likewise collapses its per-get
  ``cache.access`` telemetry into one ``cache.access_batch``;
* epoch/liveness checking still applies to batches (one pass);
* ``Window.issue`` is a real extension point: a hand-built descriptor
  behaves exactly like the scalar op method that would have built it.
"""

import numpy as np
import pytest

from repro import obs
from repro.apps.cachespec import CacheSpec
from repro.mpi import EpochError, SimMPI, Window
from repro.rma.descriptor import describe_get
from repro.obs import CACHE_ACCESS, CACHE_ACCESS_BATCH, RMA_GET, RMA_GET_BATCH

N_OPS = 6
SLICE = 16  # int64 elements per get


def _fill(win, rank):
    win.local_view(np.int64)[:] = np.arange(512) + 1000 * rank


def _requests(peer):
    bufs = [np.empty(SLICE, np.int64) for _ in range(N_OPS)]
    reqs = [(bufs[i], peer, i * SLICE * 8) for i in range(N_OPS)]
    return bufs, reqs


def _scalar_program(m):
    win = Window.allocate(m.comm_world, 4096)
    _fill(win, m.rank)
    m.comm_world.barrier()
    if m.rank != 0:
        return None
    bufs, reqs = _requests(peer=1)
    win.lock_all()
    t0 = m.time
    for origin, target, disp in reqs:
        win.get(origin, target, disp)
    win.flush(1)
    dt = m.time - t0
    win.unlock_all()
    return np.concatenate(bufs), dt


def _batch_program(m):
    win = Window.allocate(m.comm_world, 4096)
    _fill(win, m.rank)
    m.comm_world.barrier()
    if m.rank != 0:
        return None
    bufs, reqs = _requests(peer=1)
    win.lock_all()
    t0 = m.time
    sizes = win.get_batch(reqs)
    win.flush(1)
    dt = m.time - t0
    win.unlock_all()
    return np.concatenate(bufs), dt, sizes


class TestBatchBitIdentity:
    def test_same_target_batch_matches_n_scalar_gets(self):
        scalar = SimMPI(nprocs=2).run(_scalar_program)[0]
        batch = SimMPI(nprocs=2).run(_batch_program)[0]
        assert np.array_equal(scalar[0], batch[0])
        # Virtual time must be *bit*-identical, not merely close: every
        # element of the batch is priced through the same pipeline.
        assert scalar[1] == batch[1]
        assert batch[2] == [SLICE * 8] * N_OPS

    def test_multi_target_batch_matches_scalar(self):
        def prog(batched):
            def run(m):
                win = Window.allocate(m.comm_world, 4096)
                _fill(win, m.rank)
                m.comm_world.barrier()
                if m.rank != 0:
                    return None
                bufs = [np.empty(SLICE, np.int64) for _ in range(4)]
                reqs = [
                    (bufs[0], 1, 0),
                    (bufs[1], 2, 128),
                    (bufs[2], 1, 256),
                    (bufs[3], 2, 0),
                ]
                win.lock_all()
                t0 = m.time
                if batched:
                    win.get_batch(reqs)
                else:
                    for origin, target, disp in reqs:
                        win.get(origin, target, disp)
                win.flush_all()
                dt = m.time - t0
                win.unlock_all()
                return np.concatenate(bufs), dt

            return run

        scalar = SimMPI(nprocs=3).run(prog(False))[0]
        batch = SimMPI(nprocs=3).run(prog(True))[0]
        assert np.array_equal(scalar[0], batch[0])
        assert scalar[1] == batch[1]


class TestBatchTelemetry:
    def test_one_batched_event_instead_of_n(self):
        with obs.capture() as sink:
            SimMPI(nprocs=2).run(_batch_program)
        batch_events = sink.events(kind=RMA_GET_BATCH)
        assert len(batch_events) == 1
        assert sink.events(kind=RMA_GET) == []
        (ev,) = batch_events
        assert ev.attrs["count"] == N_OPS
        assert ev.attrs["nbytes"] == N_OPS * SLICE * 8
        # Every element carries its sanitizer footprint.
        assert len(ev.attrs["ops"]) == N_OPS
        for i, op in enumerate(ev.attrs["ops"]):
            assert op["target"] == 1
            assert op["base"] == i * SLICE * 8
            assert op["span"] == SLICE * 8
            assert "origin" in op and "onbytes" in op

    def test_scalar_gets_still_emit_per_op(self):
        with obs.capture() as sink:
            SimMPI(nprocs=2).run(_scalar_program)
        assert len(sink.events(kind=RMA_GET)) == N_OPS
        assert sink.events(kind=RMA_GET_BATCH) == []


def _cached_program(batched, rounds=2):
    def run(m):
        buf = (np.arange(512) + 1000 * m.rank).astype(np.int64)
        spec = CacheSpec.clampi_fixed(64, 16 * 1024)
        win = spec.make_window(m.comm_world, buf.view(np.uint8))
        m.comm_world.barrier()
        if m.rank != 0:
            return None
        out = []
        win.lock_all()
        t0 = m.time
        for _ in range(rounds):  # round 2 is served from cache
            bufs, reqs = _requests(peer=1)
            if batched:
                win.get_batch(reqs)
            else:
                for origin, target, disp in reqs:
                    win.get(origin, target, disp)
            win.flush(1)
            out.append(np.concatenate(bufs))
        dt = m.time - t0
        win.unlock_all()
        return np.vstack(out), dt

    return run


class TestCachedBatch:
    def test_cached_batch_bit_identical_to_scalar(self):
        scalar = SimMPI(nprocs=2).run(_cached_program(False))[0]
        batch = SimMPI(nprocs=2).run(_cached_program(True))[0]
        assert np.array_equal(scalar[0], batch[0])
        assert scalar[1] == batch[1]

    def test_cached_batch_telemetry_collapses(self):
        with obs.capture() as sink:
            SimMPI(nprocs=2).run(_cached_program(True))
        access_batches = sink.events(kind=CACHE_ACCESS_BATCH)
        # One accounting event per get_batch call (two rounds).
        assert len(access_batches) == 2
        assert sink.events(kind=CACHE_ACCESS) == []
        # Round 1 misses through the wrapped window as one net batch;
        # round 2 is served from cache — no second network batch.
        net_batches = sink.events(kind=RMA_GET_BATCH)
        assert len(net_batches) == 1
        assert net_batches[0].attrs["count"] == N_OPS
        first, second = access_batches
        # "direct" is the paper's label for a clean miss (no conflict or
        # capacity eviction on insert).
        assert [op["access"] for op in first.attrs["ops"]] == ["direct"] * N_OPS
        assert [op["access"] for op in second.attrs["ops"]] == [
            "hit_full"
        ] * N_OPS


class TestBatchEpochChecks:
    def test_batch_outside_epoch_raises(self):
        def prog(m):
            win = Window.allocate(m.comm_world, 4096)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            bufs, reqs = _requests(peer=1)
            with pytest.raises(EpochError):
                win.get_batch(reqs)
            return True

        assert SimMPI(nprocs=2).run(prog)[0] is True

    def test_batch_bad_rank_raises(self):
        def prog(m):
            win = Window.allocate(m.comm_world, 4096)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock_all()
            buf = np.empty(SLICE, np.int64)
            with pytest.raises(Exception):
                win.get_batch([(buf, 5, 0)])
            win.unlock_all()
            return True

        assert SimMPI(nprocs=2).run(prog)[0] is True


class TestIssueExtensionPoint:
    def test_issued_descriptor_matches_scalar_get(self):
        def prog(m):
            win = Window.allocate(m.comm_world, 4096)
            _fill(win, m.rank)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            a = np.empty(SLICE, np.int64)
            b = np.empty(SLICE, np.int64)
            win.lock_all()
            t0 = m.time
            win.get(a, 1, 0)
            win.flush(1)
            dt_scalar = m.time - t0
            t0 = m.time
            desc = describe_get(win, b, 1, 0, None, None)
            win.issue(desc)
            win.flush(1)
            dt_issue = m.time - t0
            win.unlock_all()
            fp = desc.footprint()
            return np.array_equal(a, b), dt_scalar == dt_issue, fp

        ok, same_time, fp = SimMPI(nprocs=2).run(prog)[0]
        assert ok and same_time
        assert fp["target"] == 1
        assert fp["base"] == 0
        assert fp["nbytes"] == SLICE * 8
