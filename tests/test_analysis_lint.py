"""Tests for the static repo-invariant linter (repro.analysis.lint).

Each rule is exercised on a bad snippet written to a tmp tree shaped like
the real package layout (path-scoped rules key off ``repro/<pkg>/``), the
suppression comment is checked per-rule, and the real tree must lint
clean — that last test is the repo invariant itself.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, run_lint

SRC = Path(__file__).resolve().parent.parent / "src"


def lint_snippet(tmp_path, relpath, code):
    f = tmp_path / relpath
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(code))
    return run_lint([tmp_path])


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestWallClock:
    def test_time_time_flagged_in_core(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            """
            import time
            def f():
                return time.time()
            """,
        )
        assert rules_of(findings) == ["ANL001"]
        assert findings[0].line == 4

    def test_monotonic_flagged_in_net(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/net/x.py",
            "import time\nt = time.monotonic()\n",
        )
        assert rules_of(findings) == ["ANL001"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/mpi/x.py",
            "import datetime\nd = datetime.datetime.now()\n",
        )
        assert rules_of(findings) == ["ANL001"]

    def test_wall_clock_allowed_outside_restricted_packages(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            "import time\nt = time.perf_counter()\n",
        )
        assert findings == []


class TestSeededRandom:
    def test_module_level_random_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/core/x.py", "import random\nx = random.random()\n"
        )
        assert rules_of(findings) == ["ANL002"]

    def test_seeded_random_instance_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import random\nrng = random.Random(42)\nx = rng.random()\n",
        )
        assert findings == []

    def test_unseeded_random_instance_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/core/x.py", "import random\nrng = random.Random()\n"
        )
        assert rules_of(findings) == ["ANL002"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/net/x.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rules_of(findings) == ["ANL002"]

    def test_seeded_default_rng_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/net/x.py",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        )
        assert findings == []

    def test_np_global_state_flagged_even_with_args(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        assert rules_of(findings) == ["ANL002"]


class TestResilienceBypass:
    def test_internal_call_flagged_outside_mpi(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            "def f(win):\n    return win._put_once(0, 1, 2)\n",
        )
        assert rules_of(findings) == ["ANL003"]
        assert "_put_once" in findings[0].message

    def test_internal_call_allowed_inside_mpi(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/mpi/x.py",
            "def f(win):\n    return win._put_once(0, 1, 2)\n",
        )
        assert findings == []


class TestEventRegistry:
    def test_unregistered_literal_emission_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            "def f(bus):\n    bus._emit('rma.bogus', 0)\n",
        )
        assert rules_of(findings) == ["ANL004"]

    def test_unregistered_constant_name_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            "def f(bus):\n    bus._emit(RMA_BOGUS, 0)\n",
        )
        assert rules_of(findings) == ["ANL004"]

    def test_registered_constant_name_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            "from repro.obs import RMA_GET\n"
            "def f(bus):\n    bus._emit(RMA_GET, 0)\n",
        )
        assert findings == []

    def test_raw_literal_of_registered_kind_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/apps/x.py", "KIND = 'rma.get'\n"
        )
        assert rules_of(findings) == ["ANL004"]
        assert "RMA_GET" in findings[0].message

    def test_docstrings_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/apps/x.py", '"""About rma.get events."""\n'
        )
        assert findings == []

    def test_events_module_consistency_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/obs/events.py",
            """
            ORPHAN = "x.orphan"
            ALL_KINDS = frozenset({})
            """,
        )
        assert rules_of(findings) == ["ANL004"]
        assert "ORPHAN" in findings[0].message


class TestMutableDefaults:
    def test_list_default_flagged_anywhere(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/bench/x.py", "def f(x=[]):\n    return x\n"
        )
        assert rules_of(findings) == ["ANL005"]

    def test_dict_call_default_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/bench/x.py", "def f(*, x=dict()):\n    return x\n"
        )
        assert rules_of(findings) == ["ANL005"]

    def test_none_default_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/bench/x.py", "def f(x=None, y=()):\n    return x, y\n"
        )
        assert findings == []


class TestPipelinePurity:
    def test_emit_in_op_method_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            """
            class Window:
                def get(self, origin, target):
                    self._emit("rma.get", target=target)
                    return 0
            """,
        )
        assert "ANL006" in rules_of(findings)

    def test_fault_and_cost_access_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            """
            class CachedWindow:
                def get_batch(self, requests):
                    self.cost.lookup()
                    if self._faults:
                        pass
            """,
        )
        assert rules_of(findings) == ["ANL006"]
        assert len(findings) == 2

    def test_helper_methods_and_other_classes_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            """
            class Window:
                def _serve_miss(self, req):
                    self._emit("rma.get")

            class TracingWindow:
                def get(self, origin):
                    self._emit("rma.get")
            """,
        )
        assert findings == []

    def test_describe_and_issue_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            """
            class Window:
                def get(self, origin, target):
                    desc = describe_get(self, origin, target)
                    return self._data_pipe.issue(desc).result
            """,
        )
        assert findings == []


class TestPolicyPurity:
    def test_wall_clock_in_policy_class_flagged_anywhere(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/custom.py",
            """
            import time
            class HotPolicy(CachePolicy):
                def victim_score(self, entry, ctx):
                    return time.time()
            """,
        )
        assert rules_of(findings) == ["ANL007"]
        assert "HotPolicy" in findings[0].message

    def test_global_rng_in_policy_class_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/custom.py",
            """
            import random
            class RandomPolicy(CachePolicy):
                def victim_score(self, entry, ctx):
                    return random.random()
            """,
        )
        assert rules_of(findings) == ["ANL007"]

    def test_seeded_rng_in_policy_class_ok(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/custom.py",
            """
            import random
            class SampledPolicy(CachePolicy):
                def bind(self, capacity, seed):
                    self._rng = random.Random(seed)
            """,
        )
        assert findings == []

    def test_non_policy_class_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/custom.py",
            """
            import time
            class Helper:
                def now(self):
                    return time.time()
            """,
        )
        assert findings == []

    def test_restricted_packages_not_double_reported(self, tmp_path):
        # inside repro/core ANL001 already bans this; ANL007 must not
        # report the same line a second time
        findings = lint_snippet(
            tmp_path,
            "repro/core/custom.py",
            """
            import time
            class HotPolicy(CachePolicy):
                def victim_score(self, entry, ctx):
                    return time.time()
            """,
        )
        assert rules_of(findings) == ["ANL001"]


class TestSuppression:
    def test_allow_comment_suppresses_matching_rule(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import time\nt = time.time()  # analysis: allow(ANL001)\n",
        )
        assert findings == []

    def test_allow_comment_is_rule_specific(self, tmp_path):
        # the ANL005 allow does not silence ANL001 — and, being stale,
        # it is itself reported (ANL013)
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import time\nt = time.time()  # analysis: allow(ANL005)\n",
        )
        assert rules_of(findings) == ["ANL001", "ANL013"]

    def test_allow_comment_takes_a_rule_list(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # analysis: allow(ANL001, ANL002)\n",
        )
        assert findings == []

    def test_file_level_allow_suppresses_whole_file(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "# analysis: allow-file(ANL001)\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n",
        )
        assert findings == []

    def test_unused_suppression_warned(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "x = 1  # analysis: allow(ANL005)\n",
        )
        assert rules_of(findings) == ["ANL013"]
        assert findings[0].severity == "warning"
        assert "ANL005" in findings[0].message

    def test_unused_suppression_not_warned_out_of_rule_scope(self, tmp_path):
        # ANL001 is never evaluated outside repro/{core,mpi,net}; an allow
        # there is not "stale", the rule just does not patrol that path
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            "import time\nt = time.time()  # analysis: allow(ANL001)\n",
        )
        assert findings == []




class TestRevocationHandlers:
    BAD = """
    try:
        pass
    except RankRevokedError:
        pass
    """

    def test_flagged_outside_recovery(self, tmp_path):
        findings = lint_snippet(tmp_path, "repro/apps/x.py", self.BAD)
        assert rules_of(findings) == ["ANL008"]
        assert "repro.recovery" in findings[0].message

    def test_attribute_and_tuple_forms_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            """
            try:
                pass
            except (ValueError, errors.RankRevokedError):
                pass
            """,
        )
        assert rules_of(findings) == ["ANL008"]

    def test_recovery_package_exempt(self, tmp_path):
        assert lint_snippet(tmp_path, "repro/recovery/x.py", self.BAD) == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            """
            try:
                pass
            except RankRevokedError:  # analysis: allow(ANL008)
                pass
            """,
        )
        assert findings == []

    def test_other_exceptions_unflagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/apps/x.py",
            """
            try:
                pass
            except ValueError:
                pass
            except Exception:
                pass
            """,
        )
        assert findings == []


class TestGatedEventConstruction:
    FIXTURE = Path(__file__).resolve().parent / "fixtures" / "buggy_lint"

    def test_raw_event_flagged_in_hot_path_packages(self, tmp_path):
        for pkg in ("core", "mpi", "rma", "runtime"):
            findings = lint_snippet(
                tmp_path,
                f"repro/{pkg}/x.py",
                """
                from repro.obs import RMA_GET, Event
                def issue(bus, rank, clock):
                    bus.emit(Event(RMA_GET, rank, clock))
                """,
            )
            assert rules_of(findings) == ["ANL014"], pkg
            (tmp_path / "repro" / pkg / "x.py").unlink()

    def test_emit_helper_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/rma/x.py",
            """
            from repro.obs import RMA_GET, Event
            class W:
                def _emit(self, kind, rank, clock):
                    if not self.obs.wants(kind):
                        return
                    self.obs.emit(Event(kind, rank, clock))
                def _emit_access(self, rank, clock):
                    self.obs.emit(Event(RMA_GET, rank, clock))
            """,
        )
        assert findings == []

    def test_nested_function_inside_helper_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/rma/x.py",
            """
            from repro.obs import RMA_GET, Event
            def _emit_batch(bus, ops):
                def build(op):
                    return Event(RMA_GET, op.rank, op.clock)
                for op in ops:
                    bus.emit(build(op))
            """,
        )
        assert findings == []

    def test_helper_nested_in_op_function_counts(self, tmp_path):
        # the gate is lexical: a _emit* closure defined inside an op body
        # is still a gated helper; the op body itself is not
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            """
            from repro.obs import RMA_GET, Event
            def serve(bus, rank, clock):
                def _emit_hit():
                    bus.emit(Event(RMA_GET, rank, clock))
                _emit_hit()
                return Event(RMA_GET, rank, clock)
            """,
        )
        assert rules_of(findings) == ["ANL014"]
        assert len(findings) == 1

    def test_attribute_spellings_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/runtime/x.py",
            """
            from repro import obs
            def tick(bus, rank, clock):
                bus.emit(obs.Event("sched.switch", rank, clock))
            """,
        )
        assert "ANL014" in rules_of(findings)

    def test_threading_event_unflagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/runtime/x.py",
            "import threading\ndone = threading.Event()\n",
        )
        assert findings == []

    def test_cold_packages_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/bench/x.py",
            """
            from repro.obs import RMA_GET, Event
            def replay(bus, rank, clock):
                bus.emit(Event(RMA_GET, rank, clock))
            """,
        )
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/rma/x.py",
            """
            from repro.obs import RMA_GET, Event
            def issue(bus, rank, clock):
                bus.emit(Event(RMA_GET, rank, clock))  # analysis: allow(ANL014)
            """,
        )
        assert findings == []

    def test_seeded_fixture_still_flagged(self):
        findings = run_lint([self.FIXTURE])
        assert "ANL014" in rules_of(findings)


class TestWalker:
    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        bad = "def f(x=[]):\n    return x\n"
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "ok.py").write_text("x = 1\n")
        for skipped in ("__pycache__", ".hidden", ".git"):
            d = tmp_path / "repro" / skipped
            d.mkdir()
            (d / "bad.py").write_text(bad)
        assert run_lint([tmp_path]) == []

    def test_unparseable_file_reported_not_raised(self, tmp_path):
        f = tmp_path / "repro" / "broken.py"
        f.parent.mkdir(parents=True)
        f.write_text("def f(:\n")
        findings = run_lint([tmp_path])
        assert rules_of(findings) == ["ANL000"]
        assert findings[0].path == str(f)
        assert "does not parse" in findings[0].message

    def test_undecodable_file_reported_not_raised(self, tmp_path):
        f = tmp_path / "repro" / "binary.py"
        f.parent.mkdir(parents=True)
        f.write_bytes(b"\xff\xfe\x00bad\x80")
        findings = run_lint([tmp_path])
        assert rules_of(findings) == ["ANL000"]


class TestDriver:
    def test_every_rule_has_a_description(self):
        assert set(RULES) == {f"ANL{n:03d}" for n in range(15)}

    def test_findings_sorted_and_rendered(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/x.py",
            "import time\ndef f(x={}):\n    return time.time()\n",
        )
        assert [f.rule for f in findings] == ["ANL005", "ANL001"]  # line order
        assert findings[0].render().endswith(findings[0].message)
        assert ":2: ANL005" in findings[0].render()

    def test_real_tree_lints_clean(self):
        assert run_lint([SRC]) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "ANL005" in capsys.readouterr().out
        assert main(["lint", str(SRC)]) == 0
