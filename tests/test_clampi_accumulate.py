"""Accumulate through a cached window: pass-through + invalidation guard."""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestCachedAccumulate:
    def test_accumulate_applies_and_invalidates(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            win.local_view(np.int64)[:] = 10
            m.comm_world.barrier()
            if m.rank != 0:
                m.comm_world.barrier()
                return None
            buf = np.empty(64, np.int64)
            win.lock_all()
            win.get_blocking(buf, 1, 0)        # cache [0, 512)
            assert np.all(buf == 10)
            win.accumulate(np.full(8, 5, np.int64), 1, 0)
            win.flush(1)
            m.comm_world.barrier()
            win.get_blocking(buf, 1, 0)        # must refetch: sees 15s
            win.unlock_all()
            assert buf[:8].tolist() == [15] * 8
            assert buf[8:].tolist() == [10] * 56
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["direct"] == 2    # second get was a miss again
        assert s["hit_full"] == 0

    def test_accumulate_elsewhere_keeps_cache(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            buf = np.empty(64, np.uint8)
            win.lock_all()
            win.get_blocking(buf, 1, 0)
            win.accumulate(np.ones(8, np.int64), 1, 2 * KiB)  # far away
            win.flush(1)
            win.get_blocking(buf, 1, 0)        # still a hit
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_full"] == 1

    def test_accumulate_not_counted_as_get(self):
        def program(m):
            win = clampi.window_allocate(m.comm_world, 256)
            m.comm_world.barrier()
            win.lock_all()
            win.accumulate(np.ones(4, np.int64), 0, 0)
            win.flush(0)
            win.unlock_all()
            return win.stats.snapshot()["gets"]

        results, _ = run(2, program)
        assert results[0] == 0
