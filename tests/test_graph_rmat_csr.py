"""Unit tests for the R-MAT generator and CSR structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph, rmat_edges, rmat_graph


class TestRmatEdges:
    def test_counts_and_range(self):
        src, dst = rmat_edges(scale=8, nedges=5000, seed=1)
        assert src.size == dst.size == 5000
        assert src.min() >= 0 and src.max() < 256
        assert dst.min() >= 0 and dst.max() < 256

    def test_deterministic(self):
        a = rmat_edges(6, 1000, seed=9)
        b = rmat_edges(6, 1000, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_output(self):
        a = rmat_edges(6, 1000, seed=1)
        b = rmat_edges(6, 1000, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_skewed_degrees(self):
        """R-MAT produces scale-free-ish skew: hubs far above the mean."""
        src, _dst = rmat_edges(10, 2**14, seed=3, noise=0)
        deg = np.bincount(src, minlength=1024)
        assert deg.max() > 5 * deg.mean()

    def test_bad_probs_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, probs=(0.5, 0.5, 0.5, 0.5))

    def test_zero_edges(self):
        src, dst = rmat_edges(4, 0)
        assert src.size == 0


class TestRmatGraph:
    def test_no_self_loops(self):
        src, dst = rmat_graph(8, 4000, seed=2)
        assert np.all(src != dst)

    def test_no_duplicates(self):
        src, dst = rmat_graph(8, 4000, seed=2)
        keys = set(zip(src.tolist(), dst.tolist()))
        assert len(keys) == src.size

    def test_symmetric(self):
        src, dst = rmat_graph(7, 2000, seed=4)
        keys = set(zip(src.tolist(), dst.tolist()))
        assert all((v, u) in keys for u, v in keys)


class TestCSR:
    def test_from_edges_basic(self):
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 2, 2, 0])
        g = CSRGraph.from_edges(src, dst, 3)
        assert g.nvertices == 3
        assert g.nedges == 4
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [2]
        assert g.neighbors(2).tolist() == [0]

    def test_neighbors_sorted(self):
        src = np.array([0, 0, 0])
        dst = np.array([5, 1, 3])
        g = CSRGraph.from_edges(src, dst, 6)
        assert g.neighbors(0).tolist() == [1, 3, 5]

    def test_degrees(self):
        g = CSRGraph.from_edges(np.array([0, 0, 2]), np.array([1, 2, 1]), 3)
        assert g.degrees().tolist() == [2, 0, 1]
        assert g.degree(0) == 2

    def test_has_edge(self):
        g = CSRGraph.from_edges(np.array([0]), np.array([2]), 3)
        assert g.has_edge(0, 2)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(2, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(np.array([0]), np.array([5]), 3)

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(np.array([4]), np.array([0]), 6)
        assert g.degree(2) == 0
        assert g.neighbors(2).size == 0

    def test_lcc_triangle(self):
        # triangle 0-1-2: every vertex has LCC 1
        src = np.array([0, 1, 0, 2, 1, 2])
        dst = np.array([1, 0, 2, 0, 2, 1])
        g = CSRGraph.from_edges(src, dst, 3)
        for v in range(3):
            assert g.local_clustering(v) == 1.0

    def test_lcc_star(self):
        # star: centre 0 connected to 1,2,3 with no edges among leaves
        src = np.array([0, 1, 0, 2, 0, 3])
        dst = np.array([1, 0, 2, 0, 3, 0])
        g = CSRGraph.from_edges(src, dst, 4)
        assert g.local_clustering(0) == 0.0

    def test_lcc_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        src, dst = rmat_graph(7, 600, seed=5)
        g = CSRGraph.from_edges(src, dst, 128)
        G = nx.Graph()
        G.add_nodes_from(range(128))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        ref = nx.clustering(G)
        for v in range(128):
            assert g.local_clustering(v) == pytest.approx(ref[v])

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))
