"""Graceful cache degradation: storage faults, quarantine, probe re-enable.

Contract (docs/resilience.md): injected ``StorageFault``s never reach the
application — the access is served from the network; a streak of them
quarantines the cache (all gets direct) until a probe window of degraded
gets has passed, after which caching resumes.
"""

import numpy as np
import pytest

from repro import clampi, obs
from repro.core.config import Config
from repro.faults import FaultPlan, FaultRule
from repro.mpi import SimMPI

CFG = Config(
    mode=clampi.Mode.ALWAYS_CACHE,
    quarantine_threshold=2,
    quarantine_probe_interval=4,
)

#: Guaranteed allocation failures only inside an early virtual-time window,
#: so each run passes through pressure and then recovery.
PRESSURE = FaultPlan.of(
    FaultRule("alloc", probability=1.0, t_end=2e-4), seed=3
)


def _reuse_program(mpi, rounds=40, config=CFG):
    comm = mpi.comm_world
    win = clampi.window_allocate(comm, 1024, config=config)
    win.local_view(np.float64)[:] = np.arange(128) + 1000.0 * mpi.rank
    comm.barrier()
    peer = (mpi.rank + 1) % mpi.size
    buf = np.empty(16)
    out = []
    with win.lock_all_epoch():
        for i in range(rounds):
            win.get(buf, peer, (i % 8) * 16 * 8)
            win.flush(peer)
            out.append(buf.copy())
    win.check_invariants()
    return np.vstack(out), clampi.stats(win).snapshot(), clampi.degraded(win)


class TestQuarantine:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            Config(quarantine_threshold=0)
        with pytest.raises(ValueError):
            Config(quarantine_probe_interval=0)

    def test_storage_faults_never_reach_the_application(self):
        clean = SimMPI(nprocs=2).run(_reuse_program)
        faulty = SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        for (a, _, _), (b, _, _) in zip(clean, faulty):
            assert np.array_equal(a, b)

    def test_streak_quarantines_and_probe_reenables(self):
        results = SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        for _, snap, degraded_at_end in results:
            assert snap["storage_faults"] >= CFG.quarantine_threshold
            assert snap["quarantines"] >= 1
            assert snap["degraded_gets"] >= CFG.quarantine_probe_interval
            # The pressure window closed long before the program ended,
            # so the final probe must have re-enabled the cache.
            assert not degraded_at_end
            # Post-recovery accesses were cached again.
            assert snap["hit_full"] > 0

    def test_quarantine_emits_degraded_events(self):
        with obs.capture() as sink:
            SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        events = sink.events(kind=obs.CACHE_DEGRADED)
        states = [e.attrs["state"] for e in events]
        assert "quarantined" in states
        assert "re-enabled" in states
        entered = [e for e in events if e.attrs["state"] == "quarantined"]
        assert all(
            e.attrs["probe_in"] == CFG.quarantine_probe_interval for e in entered
        )

    def test_sporadic_faults_below_threshold_never_quarantine(self):
        """Isolated allocation faults degrade one access, not the cache."""
        sporadic = FaultPlan.of(FaultRule("alloc", probability=0.05), seed=8)
        cfg = Config(mode=clampi.Mode.ALWAYS_CACHE, quarantine_threshold=10)
        results = SimMPI(nprocs=2, faults=sporadic).run(
            _reuse_program, config=cfg
        )
        for _, snap, degraded in results:
            assert snap["quarantines"] == 0
            assert snap["degraded_gets"] == 0
            assert not degraded

    def test_deterministic_degradation(self):
        a = SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        b = SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        for (xa, sa, da), (xb, sb, db) in zip(a, b):
            assert np.array_equal(xa, xb)
            assert sa == sb and da == db

    def test_degraded_gets_classified_failing(self):
        results = SimMPI(nprocs=2, faults=PRESSURE).run(_reuse_program)
        for _, snap, _ in results:
            assert snap["failing"] >= snap["degraded_gets"]


class TestCrashVsDegradation:
    """Crash-stop failures must not pollute the transient-fault machinery.

    A get refused because its target crashed is not a storage fault: it
    must not advance the quarantine streak, trip a quarantine, or mark
    the cache degraded — it is counted separately (``failed_target_gets``).
    """

    def test_failed_target_gets_leave_quarantine_state_untouched(self):
        from repro import recovery
        from repro.mpi.errors import TargetFailedError

        crash = FaultPlan.of(
            FaultRule("crash", probability=1.0, ranks=(1,), t_start=1e-2),
            seed=5,
        )
        cfg = Config(
            mode=clampi.Mode.ALWAYS_CACHE,
            quarantine_threshold=2,  # trigger-happy on purpose
            recovery="invalidate",
        )

        def program(mpi):
            win = clampi.window_allocate(mpi.comm_world, 1024, config=cfg)
            recovery.barrier(mpi.comm_world)
            if mpi.rank == 1:
                mpi.compute(1.0)  # dies at t=1e-2
                return None
            mpi.compute(2e-2)
            buf = np.empty(16)
            win.lock_all()
            # Far past quarantine_threshold: every one refused, none of
            # them may count as a storage-fault streak.
            for _ in range(8):
                with pytest.raises(TargetFailedError):
                    win.get(buf, 1, 0)
            win.unlock_all()
            snap = clampi.stats(win).snapshot()
            assert snap["failed_target_gets"] == 8
            assert snap["storage_faults"] == 0
            assert snap["quarantines"] == 0
            assert win._fault_streak == 0
            assert not clampi.degraded(win)
            return True

        results = SimMPI(nprocs=3, faults=crash).run(program)
        assert results == [True, None, True]
