"""Unit tests for the dynamic RMA sanitizer (synthetic event streams).

Drives :class:`repro.analysis.Sanitizer` directly with hand-built obs
events — no simulator — to pin down the conflict matrix, epoch-closure
retirement, interval-overlap precision (touching-but-disjoint ranges must
NOT conflict), the local-buffer completion rule, stale-cache-hit
detection, epoch-leak auditing and strict-mode raising.
"""

import pytest

from repro.analysis import Sanitizer, ViolationKind, sanitize
from repro.analysis.recorder import IntervalIndex, RangeMap, op_record
from repro.mpi import EpochMisuseError, RMARaceError
from repro.obs import EventBus, RingBufferSink
from repro.obs.events import (
    ANALYSIS_VIOLATION,
    CACHE_ACCESS,
    RMA_ACCUMULATE,
    RMA_FENCE,
    RMA_FLUSH,
    RMA_GET,
    RMA_LOCK,
    RMA_PUT,
    RMA_UNLOCK,
    Event,
)

W = 7  # window id used throughout


def rma(kind, rank, target, lo, hi, *, t=0.0, epoch=0, op=None, obuf=None):
    """A synthetic RMA op event mirroring the window layer's attrs."""
    attrs = {"target": target, "base": lo, "span": hi - lo, "nbytes": hi - lo}
    if op is not None:
        attrs["op"] = op
    if obuf is not None:
        attrs["origin"] = obuf
        attrs["onbytes"] = hi - lo
    return Event(kind, rank, t, epoch, W, attrs=attrs)


def closure(kind, rank, target=None):
    return Event(kind, rank, 0.0, 0, W, attrs={"target": target})


def lock(rank, target=None):
    return Event(
        RMA_LOCK, rank, 0.0, 0, W, attrs={"target": target, "lock_type": "shared"}
    )


def cache_hit(rank, target, lo, hi, access="hit_full"):
    return Event(
        CACHE_ACCESS,
        rank,
        0.0,
        0,
        W,
        attrs={"access": access, "target": target, "nbytes": hi - lo, "base": lo},
    )


def feed(*events, strict=False):
    san = Sanitizer(strict=strict)
    for e in events:
        san.handle(e)
    return san


# ---------------------------------------------------------------------------
# conflict matrix
# ---------------------------------------------------------------------------
class TestConflicts:
    def test_put_get_overlap_is_race(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            rma(RMA_GET, 1, 2, 32, 96),
        )
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_GET]
        a, b = san.violations[0].ops
        assert (a.op, b.op) == ("put", "get")
        assert (a.origin, b.origin) == (0, 1)

    def test_put_put_overlap_is_race(self):
        san = feed(rma(RMA_PUT, 0, 2, 0, 64), rma(RMA_PUT, 1, 2, 0, 64))
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_PUT]

    def test_get_get_overlap_is_fine(self):
        san = feed(rma(RMA_GET, 0, 2, 0, 64), rma(RMA_GET, 1, 2, 0, 64))
        assert san.violations == []

    def test_touching_but_disjoint_is_fine(self):
        san = feed(rma(RMA_PUT, 0, 2, 0, 8), rma(RMA_GET, 1, 2, 8, 16))
        assert san.violations == []

    def test_same_op_accumulates_are_exempt(self):
        san = feed(
            rma(RMA_ACCUMULATE, 0, 2, 0, 64, op="sum"),
            rma(RMA_ACCUMULATE, 1, 2, 0, 64, op="sum"),
        )
        assert san.violations == []

    def test_mixed_op_accumulates_conflict(self):
        san = feed(
            rma(RMA_ACCUMULATE, 0, 2, 0, 64, op="sum"),
            rma(RMA_ACCUMULATE, 1, 2, 0, 64, op="max"),
        )
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_ACC_MIX]

    def test_accumulate_vs_put_conflicts(self):
        san = feed(
            rma(RMA_ACCUMULATE, 0, 2, 0, 64, op="sum"),
            rma(RMA_PUT, 1, 2, 32, 40),
        )
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_ACC_MIX]

    def test_different_targets_never_conflict(self):
        san = feed(rma(RMA_PUT, 0, 2, 0, 64), rma(RMA_PUT, 1, 3, 0, 64))
        assert san.violations == []


# ---------------------------------------------------------------------------
# epoch-closure retirement
# ---------------------------------------------------------------------------
class TestRetirement:
    def test_flush_retires_before_next_op(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_GET, 1, 2, 0, 64),
        )
        assert san.violations == []

    def test_targeted_flush_keeps_other_targets_outstanding(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            closure(RMA_FLUSH, 0, target=3),  # wrong target: 2 still open
            rma(RMA_GET, 1, 2, 0, 64),
        )
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_GET]

    def test_flush_all_retires_everything(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            rma(RMA_PUT, 0, 3, 0, 64),
            closure(RMA_FLUSH, 0, target=None),
            rma(RMA_GET, 1, 2, 0, 64),
            rma(RMA_GET, 1, 3, 0, 64),
        )
        assert san.violations == []

    def test_other_ranks_flush_does_not_retire(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            closure(RMA_FLUSH, 1, target=None),  # rank 1's flush, not rank 0's
            rma(RMA_GET, 1, 2, 0, 64),
        )
        assert [v.kind for v in san.violations] == [ViolationKind.RACE_PUT_GET]

    def test_fence_retires(self):
        san = feed(
            rma(RMA_PUT, 0, 2, 0, 64),
            Event(RMA_FENCE, 0, 0.0, 0, W),
            rma(RMA_GET, 1, 2, 0, 64),
        )
        assert san.violations == []


# ---------------------------------------------------------------------------
# local-buffer completion rule
# ---------------------------------------------------------------------------
class TestLocalBuffer:
    def test_reusing_get_destination_before_flush(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 64, obuf=1000),
            rma(RMA_PUT, 0, 3, 0, 64, obuf=1000),  # reads undefined bytes
        )
        kinds = [v.kind for v in san.violations]
        assert ViolationKind.LOCAL_BUFFER_HAZARD in kinds

    def test_flush_completes_the_get(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 64, obuf=1000),
            closure(RMA_FLUSH, 0, target=None),
            rma(RMA_PUT, 0, 3, 0, 64, obuf=1000),
        )
        assert san.violations == []

    def test_disjoint_buffers_are_fine(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 64, obuf=1000),
            rma(RMA_PUT, 0, 3, 0, 64, obuf=2000),
        )
        assert san.violations == []

    def test_other_ranks_buffers_do_not_alias(self):
        # Same virtual address on a different rank is a different buffer.
        san = feed(
            rma(RMA_GET, 0, 2, 0, 64, obuf=1000),
            rma(RMA_PUT, 1, 3, 0, 64, obuf=1000),
        )
        assert san.violations == []


# ---------------------------------------------------------------------------
# stale cache hits
# ---------------------------------------------------------------------------
class TestStaleCacheHit:
    def test_hit_after_foreign_put_is_stale(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 256),           # rank 0 fetches (fills cache)
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_PUT, 1, 2, 0, 256),           # rank 1 overwrites the range
            closure(RMA_FLUSH, 1, target=2),
            cache_hit(0, 2, 0, 256),              # rank 0 hit: stale!
        )
        assert [v.kind for v in san.violations] == [ViolationKind.STALE_CACHE_HIT]
        (w,) = san.violations[0].ops
        assert w.op == "put" and w.origin == 1

    def test_hit_refetched_after_write_is_fresh(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 256),
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_PUT, 1, 2, 0, 256),
            closure(RMA_FLUSH, 1, target=2),
            rma(RMA_GET, 0, 2, 0, 256),           # re-fetch after the write
            closure(RMA_FLUSH, 0, target=2),
            cache_hit(0, 2, 0, 256),
        )
        assert san.violations == []

    def test_own_writes_are_not_stale(self):
        # CLaMPI invalidates on local puts; a hit after one's own put on a
        # disjoint code path is the writer's own coherence domain.
        san = feed(
            rma(RMA_GET, 0, 2, 0, 256),
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_PUT, 0, 2, 0, 256),
            closure(RMA_FLUSH, 0, target=2),
            cache_hit(0, 2, 0, 256),
        )
        assert san.violations == []

    def test_miss_classifications_are_ignored(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 256),
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_PUT, 1, 2, 0, 256),
            closure(RMA_FLUSH, 1, target=2),
            cache_hit(0, 2, 0, 256, access="direct"),
        )
        assert san.violations == []

    def test_disjoint_write_is_fine(self):
        san = feed(
            rma(RMA_GET, 0, 2, 0, 128),
            closure(RMA_FLUSH, 0, target=2),
            rma(RMA_PUT, 1, 2, 128, 256),
            closure(RMA_FLUSH, 1, target=2),
            cache_hit(0, 2, 0, 128),
        )
        assert san.violations == []


# ---------------------------------------------------------------------------
# epoch leaks + strict mode
# ---------------------------------------------------------------------------
class TestEpochsAndStrict:
    def test_leaked_lock_reported_at_finish(self):
        san = feed(lock(0, target=2))
        assert san.violations == []
        leaks = san.finish()
        assert [v.kind for v in leaks] == [ViolationKind.EPOCH_LEAK]
        assert "lock(2)" in leaks[0].message and "rank 0" in leaks[0].message

    def test_unlocked_lock_is_clean(self):
        san = feed(lock(0, target=2), closure(RMA_UNLOCK, 0, target=2))
        assert san.finish() == []

    def test_leaked_lock_all_reported(self):
        san = feed(lock(0, target=None))
        assert "lock_all" in san.finish()[0].message

    def test_finish_is_idempotent(self):
        san = feed(lock(0, target=2))
        assert len(san.finish()) == 1
        assert len(san.finish()) == 1

    def test_strict_raises_race_at_call_site(self):
        san = Sanitizer(strict=True)
        san.handle(rma(RMA_PUT, 0, 2, 0, 64))
        with pytest.raises(RMARaceError) as exc:
            san.handle(rma(RMA_GET, 1, 2, 0, 64))
        assert "put" in str(exc.value) and "get" in str(exc.value)

    def test_strict_raises_epoch_misuse_for_leak(self):
        bus = EventBus()
        with pytest.raises(EpochMisuseError):
            with sanitize(strict=True, bus=bus):
                bus.emit(lock(0, target=2))

    def test_violation_events_published_to_bus(self):
        bus = EventBus()
        ring = RingBufferSink(capacity=64)
        bus.attach(ring)
        with sanitize(bus=bus) as san:
            bus.emit(rma(RMA_PUT, 0, 2, 0, 64))
            bus.emit(rma(RMA_GET, 1, 2, 0, 64))
        assert len(san.violations) == 1
        published = [e for e in ring.events() if e.kind == ANALYSIS_VIOLATION]
        assert len(published) == 1
        assert published[0].attrs["kind"] == "race.put-get"
        assert len(published[0].attrs["ops"]) == 2

    def test_report_rendering(self):
        san = feed(rma(RMA_PUT, 0, 2, 0, 64), rma(RMA_GET, 1, 2, 0, 64))
        text = san.render_report()
        assert "race.put-get" in text and "1 violation" in text
        assert san.counts() == {"race.put-get": 1}

    def test_events_without_footprint_are_skipped(self):
        # Captures from before the base/span attrs existed stay loadable.
        old = Event(RMA_PUT, 0, 0.0, 0, W, attrs={"target": 2, "nbytes": 64})
        assert op_record(old, 1) is None
        san = feed(old, rma(RMA_GET, 1, 2, 0, 64))
        assert san.violations == []


# ---------------------------------------------------------------------------
# interval machinery
# ---------------------------------------------------------------------------
class TestIntervalIndex:
    def test_overlap_query(self):
        idx = IntervalIndex()
        idx.add(0, 10, "a")
        idx.add(10, 20, "b")
        idx.add(5, 15, "c")
        assert sorted(idx.overlapping(8, 12)) == ["a", "b", "c"]
        assert sorted(idx.overlapping(0, 5)) == ["a"]
        assert idx.overlapping(20, 30) == []
        assert idx.overlapping(5, 5) == []

    def test_remove_by_handle(self):
        idx = IntervalIndex()
        h = idx.add(0, 10, "a")
        idx.add(0, 10, "b")  # duplicate range, distinct handle
        idx.remove(h)
        assert idx.overlapping(0, 10) == ["b"]
        assert len(idx) == 1

    def test_long_interval_found_from_far_left(self):
        idx = IntervalIndex()
        idx.add(0, 1000, "long")
        idx.add(990, 995, "short")
        assert "long" in idx.overlapping(998, 999)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalIndex().add(10, 0, "x")

    def test_range_map_keeps_latest(self):
        m = RangeMap()
        a = op_record(rma(RMA_PUT, 0, 2, 0, 64), 1)
        b = op_record(rma(RMA_PUT, 1, 2, 0, 64), 2)
        m.update(a)
        m.update(b)
        hits = m.overlapping(0, 64)
        assert len(hits) == 1 and hits[0].seq == 2
