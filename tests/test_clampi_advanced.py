"""Advanced CLaMPI semantics: derived datatypes, partial closures,
the dual-window pattern, and the facade API."""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import BYTE, INT32, SimMPI, Vector, Window
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


def make_window(m, mode=clampi.Mode.ALWAYS_CACHE, nbytes=16 * KiB, **cfg):
    win = clampi.window_allocate(
        m.comm_world, nbytes, mode=mode,
        config=clampi.Config(**cfg) if cfg else None,
    )
    win.local_view(np.uint8)[:] = ((np.arange(nbytes) * (m.rank + 3)) % 251).astype(
        np.uint8
    )
    m.comm_world.barrier()
    return win


class TestDerivedDatatypes:
    def test_strided_get_cached_correctly(self):
        def program(m):
            win = make_window(m)
            win.local_view(np.int32)[:] = np.arange(4 * KiB) + 1000 * m.rank
            m.comm_world.barrier()
            dt = Vector(8, 1, 4, INT32)  # 8 elements, stride 4
            buf = np.empty(8, np.int32)
            win.lock_all()
            win.get(buf, 1, 0, count=1, datatype=dt)
            win.flush(1)
            first = buf.copy()
            win.get(buf, 1, 0, count=1, datatype=dt)
            win.flush(1)
            win.unlock_all()
            expected = np.arange(0, 32, 4) + 1000
            assert np.array_equal(first, expected)
            assert np.array_equal(buf, expected)
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_full"] == 1

    def test_contiguous_get_does_not_hit_strided_entry(self):
        """Same (trg, dsp) but different layout: must not serve stale bytes."""

        def program(m):
            win = make_window(m)
            win.local_view(np.int32)[:] = np.arange(4 * KiB) + 7 * m.rank
            m.comm_world.barrier()
            strided = Vector(8, 1, 4, INT32)
            sbuf = np.empty(8, np.int32)
            cbuf = np.empty(8, np.int32)
            win.lock_all()
            win.get(sbuf, 1, 0, count=1, datatype=strided)
            win.flush(1)
            win.get(cbuf, 1, 0, count=8, datatype=INT32)  # contiguous
            win.flush(1)
            win.unlock_all()
            assert np.array_equal(sbuf, np.arange(0, 32, 4) + 7)
            assert np.array_equal(cbuf, np.arange(8) + 7)
            return True

        results, _ = run(2, program)
        assert all(results)

    def test_byte_prefix_of_int_entry_hits(self):
        def program(m):
            win = make_window(m)
            win.lock_all()
            big = np.empty(64, np.int32)
            small = np.empty(16, np.uint8)
            win.get_blocking(big, 1, 0, count=64, datatype=INT32)
            win.get_blocking(small, 1, 0, count=16, datatype=BYTE)
            win.unlock_all()
            assert np.array_equal(small, big.view(np.uint8)[:16])
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_full"] == 1


class TestPartialEpochClosure:
    def test_flush_one_peer_keeps_other_pending(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.TRANSPARENT)
            if m.rank != 0:
                m.comm_world.barrier()
                return None
            a = np.empty(128, np.uint8)
            b = np.empty(128, np.uint8)
            win.lock_all()
            win.get(a, 1, 0)
            win.get(b, 2, 0)
            win.flush(1)  # closes only peer 1's ops
            # peer 2's entry is still PENDING: a same-epoch re-get must
            # count as a pending hit, not a new miss
            b2 = np.empty(128, np.uint8)
            win.get(b2, 2, 0)
            win.flush_all()
            win.unlock_all()
            assert np.array_equal(b, b2)
            m.comm_world.barrier()
            return win.stats.snapshot()

        results, _ = run(3, program)
        s = results[0]
        assert s["direct"] == 2
        assert s["hit_pending"] == 1

    def test_transparent_invalidation_is_per_target(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.TRANSPARENT)
            if m.rank != 0:
                m.comm_world.barrier()
                return None
            buf = np.empty(128, np.uint8)
            win.lock_all()
            win.get(buf, 1, 0)
            win.get(buf, 2, 0)
            win.flush(1)   # kills peer-1 entries only
            win.flush(2)   # kills peer-2 entries
            win.get(buf, 1, 0)  # must be a miss again
            win.flush_all()
            win.unlock_all()
            m.comm_world.barrier()
            return win.stats.snapshot()

        results, _ = run(3, program)
        s = results[0]
        assert s["direct"] == 3
        assert s["hit_full"] == 0


class TestDualWindowPattern:
    def test_cached_and_uncached_window_same_memory(self):
        """Sec. III-A: two windows over the same local memory, one cached —
        the MPI-compliant way to cache per-operation."""

        def program(m):
            nbytes = 4 * KiB
            local = ((np.arange(nbytes) * (m.rank + 3)) % 251).astype(np.uint8)
            raw = Window.create(m.comm_world, local)
            cached = clampi.window_create(
                m.comm_world, local, mode=clampi.Mode.ALWAYS_CACHE
            )
            m.comm_world.barrier()
            expected = ((np.arange(nbytes) * 4) % 251).astype(np.uint8)
            buf = np.empty(256, np.uint8)
            # hot data through the cached window
            cached.lock_all()
            cached.get_blocking(buf, 1, 0)
            cached.get_blocking(buf, 1, 0)
            cached.unlock_all()
            assert np.array_equal(buf, expected[:256])
            # volatile data through the raw window: never cached
            raw.lock_all()
            raw.get(buf, 1, 1024)
            raw.flush(1)
            raw.unlock_all()
            assert np.array_equal(buf, expected[1024:1280])
            return cached.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["gets"] == 2  # the raw window's get is invisible to CLaMPI
        assert s["hit_full"] == 1


class TestFacade:
    def test_wrap_existing_window(self):
        def program(m):
            raw = Window.allocate(m.comm_world, 1024)
            win = clampi.wrap(raw, mode=clampi.Mode.TRANSPARENT)
            assert win.raw is raw
            assert win.mode is clampi.Mode.TRANSPARENT
            return True

        results, _ = run(2, program)
        assert all(results)

    def test_info_key_overrides_argument(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                256,
                mode=clampi.Mode.TRANSPARENT,
                info={clampi.INFO_MODE_KEY: "user_defined"},
            )
            return win.mode

        results, _ = run(2, program)
        assert results == [clampi.Mode.USER_DEFINED] * 2

    def test_invalidate_function(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.USER_DEFINED)
            win.lock_all()
            buf = np.empty(64, np.uint8)
            win.get_blocking(buf, 1, 0)
            clampi.invalidate(win)
            win.unlock_all()
            return win.stats.snapshot()["invalidations"]

        results, _ = run(2, program)
        assert results == [1, 1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            clampi.Config(index_entries=0)
        with pytest.raises(ValueError):
            clampi.Config(storage_bytes=0)
        with pytest.raises(ValueError):
            clampi.Config(num_hashes=1)
        with pytest.raises(ValueError):
            clampi.Config(allocator_fit="worst")
