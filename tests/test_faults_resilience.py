"""Integration tests: the window layer's retry/backoff resilience.

Covers the contract of docs/resilience.md: injected transient failures are
retried transparently (bit-identical data, virtual-time cost), disabling
retries surfaces the error deterministically, and every fault/retry is
visible through counters and obs events.
"""

import numpy as np
import pytest

from repro import clampi, obs
from repro.faults import FaultPlan, FaultRule, RetryPolicy
from repro.mpi import SimMPI, Window
from repro.mpi.errors import RMATimeoutError, TransientNetworkError
from repro.runtime.scheduler import RankFailedError


def _ring_get_program(mpi, rounds=16):
    """Each rank repeatedly gets a slice from its successor's window."""
    comm = mpi.comm_world
    win = Window.allocate(comm, 512)
    view = win.local_view(np.float64)
    view[:] = np.arange(64) + 100.0 * mpi.rank
    comm.barrier()
    peer = (mpi.rank + 1) % mpi.size
    buf = np.empty(8)
    out = []
    with win.lock_all_epoch():
        for i in range(rounds):
            win.get(buf, peer, (i % 8) * 64)
            win.flush(peer)
            out.append(buf.copy())
    return np.vstack(out), win.faults_injected, win.retries, mpi.time


PLAN = FaultPlan.of(
    FaultRule("get", probability=0.3),
    FaultRule("flush", probability=0.1),
    seed=11,
)
#: At p=0.3 a 4-deep failure streak (the default budget) is not rare;
#: tests asserting transparency use a budget streaks cannot realistically
#: exhaust (0.3**8 ~ 7e-5 per op).
RETRY = RetryPolicy(max_attempts=8)


class TestRetries:
    def test_results_bit_identical_under_faults(self):
        clean = SimMPI(nprocs=4).run(_ring_get_program)
        faulty = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_ring_get_program)
        for (a, fa, _, _), (b, fb, _, _) in zip(clean, faulty):
            assert np.array_equal(a, b)
            assert fa == 0
        assert sum(f for _, f, _, _ in faulty) > 0

    def test_retries_counted_and_charged_in_virtual_time(self):
        clean = SimMPI(nprocs=4).run(_ring_get_program)
        faulty = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_ring_get_program)
        assert sum(r for _, _, r, _ in faulty) > 0
        # Wasted round-trips + backoff make the faulted run slower.
        assert max(t for _, _, _, t in faulty) > max(t for _, _, _, t in clean)

    def test_deterministic_injection(self):
        a = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_ring_get_program)
        b = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_ring_get_program)
        for (xa, fa, ra, ta), (xb, fb, rb, tb) in zip(a, b):
            assert np.array_equal(xa, xb)
            assert (fa, ra, ta) == (fb, rb, tb)

    def test_disabled_retries_surface_error_deterministically(self):
        outcomes = []
        for _ in range(2):
            with pytest.raises(RankFailedError) as ei:
                SimMPI(
                    nprocs=4, faults=PLAN, retry=RetryPolicy.disabled()
                ).run(_ring_get_program)
            outcomes.append((ei.value.rank, type(ei.value.original)))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] in (TransientNetworkError, RMATimeoutError)

    def test_exhausted_attempts_reraise(self):
        """probability=1 faults can never succeed: the error escapes."""
        always = FaultPlan.transient_gets(1.0, seed=0)
        with pytest.raises(RankFailedError) as ei:
            SimMPI(
                nprocs=2, faults=always, retry=RetryPolicy(max_attempts=3)
            ).run(_ring_get_program)
        assert isinstance(ei.value.original, TransientNetworkError)


class TestJitterAndTimeout:
    def test_jitter_stalls_but_preserves_data(self):
        plan = FaultPlan.of(
            FaultRule("jitter", probability=0.5, stall=5e-6), seed=4
        )
        clean = SimMPI(nprocs=2).run(_ring_get_program)
        slow = SimMPI(nprocs=2, faults=plan).run(_ring_get_program)
        for (a, _, _, ta), (b, f, r, tb) in zip(clean, slow):
            assert np.array_equal(a, b)
            assert f == 0 and r == 0  # jitter alone is not a failure
            assert tb > ta

    def test_stall_past_op_timeout_degenerates_into_retryable_timeout(self):
        plan = FaultPlan.of(
            FaultRule("jitter", probability=1.0, stall=1e-3), seed=4
        )
        retry = RetryPolicy(max_attempts=2, op_timeout=1e-4)
        with pytest.raises(RankFailedError) as ei:
            SimMPI(nprocs=2, faults=plan, retry=retry).run(_ring_get_program)
        assert isinstance(ei.value.original, RMATimeoutError)


class TestObservability:
    def test_fault_and_retry_events_emitted(self):
        with obs.capture() as sink:
            SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(_ring_get_program)
        injected = sink.events(kind=obs.FAULT_INJECTED)
        retries = sink.events(kind=obs.FAULT_RETRY)
        assert injected and retries
        ops = {e.attrs["op"] for e in injected}
        assert "get" in ops
        for e in retries:
            assert e.attrs["attempt"] >= 1
            assert e.attrs["delay"] > 0
            assert e.attrs["error"] in (
                "TransientNetworkError",
                "RMATimeoutError",
            )

    def test_no_events_without_plan(self):
        with obs.capture() as sink:
            SimMPI(nprocs=2).run(_ring_get_program)
        assert not sink.events(kind=obs.FAULT_INJECTED)
        assert not sink.events(kind=obs.FAULT_RETRY)


class TestCachedWindowCounters:
    def test_stats_snapshot_carries_fault_counters(self):
        def program(mpi):
            comm = mpi.comm_world
            win = clampi.window_allocate(
                comm, 512, mode=clampi.Mode.ALWAYS_CACHE
            )
            win.local_view(np.float64)[:] = np.arange(64)
            comm.barrier()
            peer = (mpi.rank + 1) % mpi.size
            buf = np.empty(8)
            with win.lock_all_epoch():
                for i in range(16):
                    win.get(buf, peer, (i % 8) * 64)
                    win.flush(peer)
            return clampi.stats(win).snapshot()

        snaps = SimMPI(nprocs=4, faults=PLAN, retry=RETRY).run(program)
        assert all(s["schema_version"] == clampi.SCHEMA_VERSION for s in snaps)
        assert sum(s["faults_injected"] for s in snaps) > 0
        assert sum(s["retries"] for s in snaps) > 0
