"""Tests for the extension features: cache bypass, put invalidation guard,
the paper's Listing-1 pattern, and multi-window independence."""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


def make_window(m, mode=clampi.Mode.ALWAYS_CACHE, nbytes=16 * KiB):
    win = clampi.window_allocate(m.comm_world, nbytes, mode=mode)
    win.local_view(np.uint8)[:] = ((np.arange(nbytes) * (m.rank + 3)) % 251).astype(
        np.uint8
    )
    m.comm_world.barrier()
    return win


class TestBypassCache:
    def test_bypass_is_never_counted_or_cached(self):
        def program(m):
            win = make_window(m)
            buf = np.empty(256, np.uint8)
            win.lock_all()
            win.get(buf, 1, 0, bypass_cache=True)
            win.flush(1)
            win.get(buf, 1, 0)  # not in cache: this must be a miss
            win.flush(1)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["gets"] == 1
        assert s["direct"] == 1

    def test_bypass_returns_correct_data(self):
        def program(m):
            win = make_window(m)
            expected = ((np.arange(16 * KiB) * 4) % 251).astype(np.uint8)
            buf = np.empty(256, np.uint8)
            win.lock_all()
            win.get(buf, 1, 100, bypass_cache=True)
            win.flush(1)
            win.unlock_all()
            assert np.array_equal(buf, expected[100:356])
            return True

        results, _ = run(2, program)
        assert all(results)


class TestPutInvalidationGuard:
    def test_put_drops_overlapping_entry(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.ALWAYS_CACHE)
            if m.rank != 0:
                m.comm_world.barrier()
                m.comm_world.barrier()
                return None
            buf = np.empty(256, np.uint8)
            win.lock_all()
            win.get_blocking(buf, 1, 0)  # cache [0, 256) of rank 1
            cached_before = buf.copy()
            m.comm_world.barrier()
            # overwrite part of the cached range on the target
            new = np.full(64, 77, np.uint8)
            win.put(new, 1, 128)
            win.flush(1)
            m.comm_world.barrier()
            win.get_blocking(buf, 1, 0)  # must re-fetch, seeing the new bytes
            win.unlock_all()
            assert np.array_equal(buf[128:192], new)
            assert not np.array_equal(buf, cached_before)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["direct"] == 2  # the second get was a miss again
        assert s["hit_full"] == 0

    def test_put_elsewhere_keeps_entry(self):
        def program(m):
            win = make_window(m)
            if m.rank != 0:
                return None
            buf = np.empty(256, np.uint8)
            win.lock_all()
            win.get_blocking(buf, 1, 0)
            win.put(np.full(64, 5, np.uint8), 1, 8 * KiB)  # far away
            win.flush(1)
            win.get_blocking(buf, 1, 0)  # still cached
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(2, program)
        assert results[0]["hit_full"] == 1

    def test_put_to_other_rank_keeps_entry(self):
        def program(m):
            win = make_window(m)
            if m.rank != 0:
                return None
            buf = np.empty(256, np.uint8)
            win.lock_all()
            win.get_blocking(buf, 1, 0)
            win.put(np.full(64, 5, np.uint8), 2, 0)
            win.flush(2)
            win.get_blocking(buf, 1, 0)
            win.unlock_all()
            return win.stats.snapshot()

        results, _ = run(3, program)
        assert results[0]["hit_full"] == 1


class TestListing1Pattern:
    def test_user_defined_loop_exactly_as_paper(self):
        """Paper Listing 1: lock, get/get/flush loop, invalidate, unlock."""

        def program(m):
            win = make_window(m, mode=clampi.Mode.USER_DEFINED)
            if m.rank != 0:
                return None
            peer = 1
            lbuf1 = np.empty(128, np.uint8)
            lbuf2 = np.empty(128, np.uint8)
            win.lock(peer)
            for _step in range(5):
                win.get(lbuf1, peer, 0)
                win.get(lbuf2, peer, 1024)
                win.flush(peer)  # closes epoch
            clampi.invalidate(win)
            win.unlock(peer)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["gets"] == 10
        assert s["direct"] == 2          # each buffer fetched once
        assert s["hit_full"] == 8        # all later iterations hit
        assert s["invalidations"] == 1

    def test_invalidate_between_phases_forces_refetch(self):
        def program(m):
            win = make_window(m, mode=clampi.Mode.USER_DEFINED)
            if m.rank != 0:
                return None
            buf = np.empty(128, np.uint8)
            win.lock(1)
            for phase in range(3):
                win.get(buf, 1, 0)
                win.flush(1)
                clampi.invalidate(win)
            win.unlock(1)
            return win.stats.snapshot()

        results, _ = run(2, program)
        s = results[0]
        assert s["direct"] == 3
        assert s["invalidations"] == 3


class TestMultiWindow:
    def test_independent_caches(self):
        def program(m):
            a = make_window(m, nbytes=4 * KiB)
            b = make_window(m, nbytes=4 * KiB)
            if m.rank != 0:
                return None
            buf = np.empty(128, np.uint8)
            a.lock_all()
            b.lock_all()
            a.get_blocking(buf, 1, 0)
            # window b has its own I_w/S_w: same (trg, dsp) is a miss there
            b.get_blocking(buf, 1, 0)
            a.unlock_all()
            b.unlock_all()
            return a.stats.snapshot(), b.stats.snapshot()

        results, _ = run(2, program)
        sa, sb = results[0]
        assert sa["direct"] == 1 and sb["direct"] == 1
        assert sa["hit_full"] == 0 and sb["hit_full"] == 0

    def test_invalidate_one_window_not_the_other(self):
        def program(m):
            a = make_window(m)
            b = make_window(m)
            if m.rank != 0:
                return None
            buf = np.empty(128, np.uint8)
            a.lock_all()
            b.lock_all()
            a.get_blocking(buf, 1, 0)
            b.get_blocking(buf, 1, 0)
            clampi.invalidate(a)
            a.get_blocking(buf, 1, 0)  # miss: a was invalidated
            b.get_blocking(buf, 1, 0)  # hit: b untouched
            a.unlock_all()
            b.unlock_all()
            return a.stats.snapshot(), b.stats.snapshot()

        results, _ = run(2, program)
        sa, sb = results[0]
        assert sa["direct"] == 2
        assert sb["hit_full"] == 1
