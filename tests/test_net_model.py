"""Unit tests for the network/memory performance models (Fig. 1 hierarchy)."""

import pytest

from repro.net import Distance, MemoryModel, NetworkModel, PerfModel, Topology


class TestNetworkModel:
    def test_latency_hierarchy_spans_orders_of_magnitude(self):
        """Fig. 1: ~100 ns local DRAM up to 2-3 us remote group."""
        net = NetworkModel()
        local = net.transfer_time(Distance.SELF, 8)
        remote = net.transfer_time(Distance.REMOTE_GROUP, 8)
        assert local < 200e-9
        assert 1.5e-6 < remote < 3.5e-6
        assert remote / local > 10

    def test_monotone_in_distance(self):
        net = NetworkModel()
        times = [net.transfer_time(d, 1024) for d in Distance]
        assert times == sorted(times)

    def test_monotone_in_size(self):
        net = NetworkModel()
        sizes = [2**i for i in range(17)]
        times = [net.transfer_time(Distance.REMOTE_GROUP, s) for s in sizes]
        assert times == sorted(times)

    def test_bandwidth_dominates_large_messages(self):
        net = NetworkModel()
        t = net.transfer_time(Distance.REMOTE_GROUP, 1 << 20)
        alpha = net.latency[Distance.REMOTE_GROUP]
        assert t > 10 * alpha

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(Distance.SELF, -1)

    def test_injection_cheaper_than_transfer(self):
        net = NetworkModel()
        for d in Distance:
            assert net.injection_time(d, 4096) < net.transfer_time(d, 4096)

    def test_missing_distance_raises_value_error(self):
        """A custom model with an incomplete table must fail loudly."""
        net = NetworkModel(
            latency={Distance.SELF: 90e-9},
            bandwidth={Distance.SELF: 20e9},
        )
        assert net.transfer_time(Distance.SELF, 64) > 0
        with pytest.raises(ValueError, match="no parameters for"):
            net.transfer_time(Distance.REMOTE_GROUP, 64)
        with pytest.raises(ValueError, match="no parameters for"):
            net.injection_time(Distance.REMOTE_GROUP, 64)

    def test_missing_distance_error_names_covered_classes(self):
        net = NetworkModel(
            latency={Distance.SELF: 90e-9},
            bandwidth={Distance.SELF: 20e9},
        )
        with pytest.raises(ValueError, match="SELF"):
            net.transfer_time(Distance.SAME_NODE, 1)

    @pytest.mark.parametrize("bw", [0.0, -10e9])
    def test_nonpositive_bandwidth_rejected(self, bw):
        net = NetworkModel(bandwidth={d: bw for d in Distance})
        with pytest.raises(ValueError, match="must be > 0"):
            net.transfer_time(Distance.REMOTE_GROUP, 1024)


class TestMemoryModel:
    def test_zero_copy_free(self):
        assert MemoryModel().copy_time(0) == 0.0

    def test_copy_monotone(self):
        mem = MemoryModel()
        times = [mem.copy_time(2**i) for i in range(21)]
        assert times == sorted(times)

    def test_hot_cold_regimes(self):
        mem = MemoryModel()
        hot = mem.copy_time(4096) - mem.dram_latency
        cold = mem.copy_time(65536) - mem.dram_latency
        assert hot == pytest.approx(4096 / mem.copy_bandwidth_hot)
        assert cold == pytest.approx(65536 / mem.copy_bandwidth_cold)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().copy_time(-5)

    def test_nonpositive_bandwidth_rejected(self):
        hot = MemoryModel(copy_bandwidth_hot=0.0)
        with pytest.raises(ValueError, match="copy_bandwidth_hot"):
            hot.copy_time(1024)
        cold = MemoryModel(copy_bandwidth_cold=-1.0)
        with pytest.raises(ValueError, match="copy_bandwidth_cold"):
            cold.copy_time(1 << 20)
        # Zero bytes never consults the bandwidth tables.
        assert hot.copy_time(0) == 0.0


class TestPerfModel:
    def test_default_builds_matching_topology(self):
        perf = PerfModel.default(16)
        assert perf.topology.nprocs == 16

    def test_get_time_uses_distance(self):
        perf = PerfModel(topology=Topology(nprocs=256))
        near = perf.get_time(0, 1, 1024)    # same chassis
        far = perf.get_time(0, 255, 1024)   # remote group
        assert far > near

    def test_spread_placement_all_remote(self):
        perf = PerfModel.spread(8)
        assert perf.topology.distance(0, 7) is Distance.REMOTE_GROUP
        assert perf.topology.distance(3, 4) is Distance.REMOTE_GROUP

    def test_fig7_hit_vs_miss_ratio_calibration(self):
        """Paper Fig. 7: hits ~9.3x faster at 4 KiB, ~3.7x at 16 KiB."""
        perf = PerfModel.spread(2)
        mem = perf.memory
        for size, lo, hi in [(4096, 6.0, 11.0), (16384, 3.0, 5.0)]:
            miss = perf.get_time(0, 1, size) + perf.issue_time(0, 1, size)
            hit = mem.lookup_time + mem.copy_time(size)
            assert lo < miss / hit < hi, f"size={size}: ratio {miss / hit:.2f}"
