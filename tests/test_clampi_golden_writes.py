"""Golden invariant under mixed reads AND writes.

Extends the read-only golden test: random interleavings of cached gets and
(uncached, guard-invalidating) puts must always match a shadow memory
model, under every mode and sizing.  This fuzzes the put-overlap
invalidation guard together with the whole hit/miss/eviction machinery.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB

NBYTES = 8 * KiB


def _program(m, ops, config, mode):
    win = clampi.window_allocate(m.comm_world, NBYTES, mode=mode, config=config)
    shadow = [
        ((np.arange(NBYTES) * (r + 7)) % 253).astype(np.uint8)
        for r in range(m.size)
    ]
    win.local_view(np.uint8)[:] = shadow[m.rank]
    m.comm_world.barrier()
    if m.rank != 0:
        m.comm_world.barrier()
        return True
    rng = np.random.default_rng(99)
    win.lock_all()
    ok = True
    for kind, trg, dsp, n in ops:
        trg %= m.size
        dsp %= NBYTES
        n = max(1, n % (NBYTES - dsp))
        if kind == 0:  # cached get
            buf = np.empty(n, np.uint8)
            win.get(buf, trg, dsp)
            win.flush(trg)
            if not np.array_equal(buf, shadow[trg][dsp : dsp + n]):
                ok = False
                break
        else:  # put through the cache wrapper (invalidation guard)
            payload = rng.integers(0, 256, n).astype(np.uint8)
            win.put(payload, trg, dsp)
            win.flush(trg)
            shadow[trg][dsp : dsp + n] = payload
        win.check_invariants()
    win.unlock_all()
    m.comm_world.barrier()
    return ok


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 1),
            st.integers(0, 2),
            st.integers(0, NBYTES - 1),
            st.integers(1, 2 * KiB),
        ),
        min_size=1,
        max_size=30,
    ),
    mode=st.sampled_from([clampi.Mode.ALWAYS_CACHE, clampi.Mode.USER_DEFINED]),
    index_entries=st.sampled_from([8, 256]),
    storage_kib=st.sampled_from([2, 32]),
)
def test_property_reads_and_writes_match_shadow(ops, mode, index_entries, storage_kib):
    config = clampi.Config(
        index_entries=index_entries, storage_bytes=storage_kib * KiB
    )
    results = SimMPI(nprocs=3).run(_program, ops, config, mode)
    assert all(results), "cached window diverged from the shadow under writes"
