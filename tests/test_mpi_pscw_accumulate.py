"""Tests for generalised active-target sync (PSCW) and accumulate."""

import numpy as np
import pytest

from repro.mpi import EpochError, SimMPI, Window, WindowError
from repro.runtime import RankFailedError


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestPSCW:
    def test_start_complete_get(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = m.rank + 1
            m.comm_world.barrier()
            peer = (m.rank + 1) % m.size
            win.post([(m.rank - 1) % m.size])
            win.start([peer])
            buf = np.empty(8, np.int64)
            win.get(buf, peer, 0)
            win.complete()
            win.wait()
            return int(buf[0]), win.eph

        results, _ = run(3, program)
        for rank, (value, eph) in enumerate(results):
            assert value == (rank + 1) % 3 + 1
            assert eph == 1  # complete() closed one epoch

    def test_get_outside_group_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.start([1])
            buf = np.empty(8, np.uint8)
            win.get(buf, 2, 0)  # rank 2 is not in the access group

        with pytest.raises(RankFailedError) as ei:
            run(3, program)
        assert isinstance(ei.value.original, EpochError)

    def test_complete_without_start_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.complete()

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_start_inside_lock_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.lock_all()
            win.start([0])

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_fence_inside_pscw_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.start([0])
            win.fence()

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_epoch_close_hooks_fire_on_complete(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            closed = []
            win.add_epoch_close_hook(lambda w, t: closed.append(t))
            win.start([0])
            win.complete()
            return closed

        results, _ = run(1, program)
        assert results[0] == [{0}]


class TestAccumulate:
    def test_sum(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            win.lock(0)
            contrib = np.full(8, m.rank + 1, np.int64)
            win.accumulate(contrib, 0, 0, op="sum")
            win.unlock(0)
            m.comm_world.barrier()
            return win.local_view(np.int64).tolist() if m.rank == 0 else None

        results, _ = run(4, program)
        assert results[0] == [1 + 2 + 3 + 4] * 8

    def test_max_min(self):
        def program(m):
            win = Window.allocate(m.comm_world, 16)
            m.comm_world.barrier()
            win.lock(0)
            win.accumulate(np.array([m.rank], np.int64), 0, 0, op="max")
            win.accumulate(np.array([-m.rank], np.int64), 0, 8, op="min")
            win.unlock(0)
            m.comm_world.barrier()
            v = win.local_view(np.int64)
            return (int(v[0]), int(v[1])) if m.rank == 0 else None

        results, _ = run(4, program)
        assert results[0] == (3, -3)

    def test_replace(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            m.comm_world.barrier()
            if m.rank == 1:
                win.lock(0)
                win.accumulate(np.array([42], np.int64), 0, 0, op="replace")
                win.unlock(0)
            m.comm_world.barrier()
            return int(win.local_view(np.int64)[0]) if m.rank == 0 else None

        results, _ = run(2, program)
        assert results[0] == 42

    def test_float_sum(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            m.comm_world.barrier()
            win.lock(0)
            win.accumulate(np.array([0.5], np.float64), 0, 0, op="sum")
            win.unlock(0)
            m.comm_world.barrier()
            return float(win.local_view(np.float64)[0]) if m.rank == 0 else None

        results, _ = run(3, program)
        assert results[0] == pytest.approx(1.5)

    def test_unknown_op_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock(0)
            win.accumulate(np.array([1], np.int64), 0, 0, op="xor")

        with pytest.raises(RankFailedError) as ei:
            run(1, program)
        assert isinstance(ei.value.original, WindowError)

    def test_out_of_bounds_rejected(self):
        def program(m):
            win = Window.allocate(m.comm_world, 8)
            win.lock(0)
            win.accumulate(np.array([1, 2], np.int64), 0, 0)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_accumulate_charges_time(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return 0.0
            win.lock(1)
            t0 = m.time
            win.accumulate(np.ones(4096, np.float64), 1, 0)
            win.flush(1)
            dt = m.time - t0
            win.unlock(1)
            return dt

        results, _ = run(2, program)
        assert results[0] > 1e-6  # paid a remote transfer
