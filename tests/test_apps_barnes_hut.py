"""Integration tests for the distributed Barnes-Hut application."""

import numpy as np
import pytest

from repro.apps import BarnesHutApp
from repro.apps.barnes_hut import NODE_FLOATS, Octree, morton_order
from repro.apps.cachespec import CacheSpec
from repro.util import KiB, MiB


@pytest.fixture(scope="module")
def app():
    return BarnesHutApp(nbodies=200, seed=7, theta=0.4)


class TestOctree:
    def test_build_covers_all_bodies(self, app):
        tree = app.tree
        # collect leaf body ids
        leaves = [
            int(rec[6]) for rec in tree.nodes if int(rec[5]) == 0 and rec[6] >= 0
        ]
        assert sorted(leaves) == list(range(app.nbodies))

    def test_root_mass_is_total(self, app):
        root = app.tree.nodes[app.tree.root]
        assert root[3] == pytest.approx(app.mass.sum())

    def test_root_com_matches(self, app):
        root = app.tree.nodes[app.tree.root]
        com = (app.pos * app.mass[:, None]).sum(axis=0) / app.mass.sum()
        assert np.allclose(root[0:3], com)

    def test_children_indices_valid(self, app):
        tree = app.tree
        for rec in tree.nodes:
            n = int(rec[5])
            for c in range(n):
                child = int(rec[8 + c])
                assert 0 <= child < tree.nnodes

    def test_internal_mass_is_sum_of_children(self, app):
        tree = app.tree
        for rec in tree.nodes:
            n = int(rec[5])
            if n:
                child_mass = sum(tree.nodes[int(rec[8 + c])][3] for c in range(n))
                assert rec[3] == pytest.approx(child_mass)

    def test_record_width(self, app):
        assert app.tree.nodes.shape[1] == NODE_FLOATS

    def test_single_body_rejected(self):
        with pytest.raises(ValueError):
            BarnesHutApp(nbodies=1)

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            Octree.build(np.empty((0, 3)), np.empty(0))


class TestMortonOrder:
    def test_is_permutation(self, seeded_rng):
        pos = seeded_rng.random((100, 3))
        order = morton_order(pos)
        assert sorted(order.tolist()) == list(range(100))

    def test_locality(self, seeded_rng):
        """Consecutive Morton positions are spatially close on average."""
        pos = seeded_rng.random((500, 3))
        order = morton_order(pos)
        sorted_pos = pos[order]
        consecutive = np.linalg.norm(np.diff(sorted_pos, axis=0), axis=1).mean()
        rand = np.linalg.norm(pos[1:] - pos[:-1], axis=1).mean()
        assert consecutive < rand


class TestForces:
    def test_bh_approximates_brute_force(self, app):
        run = app.run(2, CacheSpec.fompi())
        ref = app.reference_forces()
        rel = np.abs(run.forces - ref).max() / np.abs(ref).max()
        assert rel < 0.05  # theta=0.4 approximation error

    @pytest.mark.parametrize(
        "spec",
        [
            CacheSpec.clampi_fixed(2048, 1 * MiB),
            CacheSpec.clampi_fixed(32, 8 * KiB),  # thrashing
            CacheSpec.clampi_adaptive(128, 16 * KiB),
            CacheSpec.native(memory_bytes=64 * KiB, block_size=128),
        ],
        ids=["clampi", "clampi-tiny", "clampi-adaptive", "native"],
    )
    def test_cached_forces_bit_identical(self, app, spec):
        base = app.run(2, CacheSpec.fompi())
        run = app.run(2, spec)
        assert np.array_equal(run.forces, base.forces)

    def test_smaller_theta_more_accurate(self):
        loose = BarnesHutApp(nbodies=150, seed=5, theta=0.9)
        tight = BarnesHutApp(nbodies=150, seed=5, theta=0.2)
        ref = loose.reference_forces()
        err_loose = np.abs(loose.run(2, CacheSpec.fompi()).forces - ref).max()
        err_tight = np.abs(tight.run(2, CacheSpec.fompi()).forces - ref).max()
        assert err_tight < err_loose

    def test_partition_covers_all_bodies(self, app):
        run = app.run(3, CacheSpec.fompi())
        assert run.forces.shape == (app.nbodies, 3)
        assert not np.any(np.all(run.forces == 0, axis=1))


class TestCachingBehaviour:
    def test_user_defined_mode_forced(self, app):
        from repro import clampi

        run = app.run(2, CacheSpec.clampi_fixed(2048, 1 * MiB))
        assert "CLaMPI" in run.label
        st = run.merged_stats()
        assert st["invalidations"] >= 2  # one explicit invalidate per rank

    def test_caching_speeds_up_force_phase(self, app):
        uncached = app.run(4, CacheSpec.fompi())
        cached = app.run(4, CacheSpec.clampi_fixed(4096, 1 * MiB))
        assert cached.elapsed < 0.7 * uncached.elapsed

    def test_reuse_visible_in_trace(self, app):
        from repro.trace import reuse_histogram

        run = app.run(4, CacheSpec.fompi(), trace=True)
        records = [r for t in run.traces for r in t.records]
        hist = reuse_histogram(records)
        assert max(hist) > 5  # tree roots are fetched once per body
