"""Integration tests for the distributed LCC application."""

import numpy as np
import pytest

from repro import clampi
from repro.apps import LCCApp
from repro.apps.cachespec import CacheSpec
from repro.util import KiB, MiB


@pytest.fixture(scope="module")
def app():
    return LCCApp(scale=7, edge_factor=8, seed=3)


class TestCorrectness:
    def test_matches_sequential_reference(self, app):
        run = app.run(4, CacheSpec.fompi())
        assert np.allclose(run.lcc, app.reference_lcc())

    def test_matches_networkx(self, app):
        nx = pytest.importorskip("networkx")
        run = app.run(4, CacheSpec.clampi_fixed(2048, 2 * MiB))
        src, dst = app._edges
        G = nx.Graph()
        G.add_nodes_from(range(app.nvertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        ref = nx.clustering(G)
        for v in range(app.nvertices):
            assert run.lcc[v] == pytest.approx(ref[v]), f"vertex {v}"

    @pytest.mark.parametrize(
        "spec",
        [
            CacheSpec.fompi(),
            CacheSpec.clampi_fixed(1024, 1 * MiB),
            CacheSpec.clampi_fixed(64, 32 * KiB),  # thrashing cache
            CacheSpec.clampi_adaptive(128, 64 * KiB),
        ],
        ids=["fompi", "clampi", "clampi-tiny", "clampi-adaptive"],
    )
    def test_all_cache_variants_identical(self, app, spec):
        baseline = app.run(3, CacheSpec.fompi())
        run = app.run(3, spec)
        assert np.array_equal(run.lcc, baseline.lcc)

    def test_single_rank(self, app):
        run = app.run(1, CacheSpec.clampi_fixed(1024, 1 * MiB))
        assert np.allclose(run.lcc, app.reference_lcc())
        # no remote ranks: everything is a local memory access, no gets
        assert run.merged_stats().get("gets", 0) == 0


class TestPerformanceShape:
    def test_caching_reduces_network_traffic(self, app):
        uncached = app.run(4, CacheSpec.fompi())
        cached = app.run(4, CacheSpec.clampi_fixed(4096, 4 * MiB))
        st = cached.merged_stats()
        assert st["hit_full"] + st["hit_pending"] > 0
        assert cached.elapsed < uncached.elapsed

    def test_always_cache_mode_default(self, app):
        spec = CacheSpec.clampi_fixed(1024, 1 * MiB)
        assert spec.mode is clampi.Mode.ALWAYS_CACHE

    def test_deterministic_virtual_time(self, app):
        a = app.run(4, CacheSpec.clampi_fixed(1024, 1 * MiB))
        b = app.run(4, CacheSpec.clampi_fixed(1024, 1 * MiB))
        assert a.elapsed == b.elapsed
        assert a.rank_times == b.rank_times

    def test_vertex_time_positive_and_consistent(self, app):
        run = app.run(4, CacheSpec.fompi())
        assert run.vertex_time > 0
        assert run.elapsed == max(run.rank_times)

    def test_trace_collection(self, app):
        run = app.run(4, CacheSpec.fompi(), trace=True)
        assert len(run.traces) == 4
        total = sum(len(t) for t in run.traces)
        st_run = app.run(4, CacheSpec.fompi())
        assert total > 0
        # every recorded get targets a remote rank's window
        for rank, t in enumerate(run.traces):
            assert all(r.trg != rank for r in t.records)


class TestValidation:
    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            LCCApp(scale=1)
