"""Regression corpus: shrunk fuzzer cases replayed through the oracle.

Every JSON file under ``tests/fixtures/verify_corpus/`` is a minimal
workload that once witnessed (or pins against) a historical bug class —
stale cache hits across epoch closure, flush-segment leaks, and the
crash/barrier-atomicity scheduler deadlock.  Each must keep replaying
with its recorded expectation; ``python -m repro.verify replay <file>``
runs the same check interactively (see docs/testing.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.reprofile import load_repro, replay

CORPUS = Path(__file__).parent / "fixtures" / "verify_corpus"
CASES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_populated():
    assert len(CASES) >= 8, "the committed verify corpus shrank"
    classes = {f.name.rsplit("_", 1)[0] for f in CASES}
    assert {"stale_hit", "epoch_leak", "crash_pin"} <= classes


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_holds(path):
    repro = load_repro(path)
    assert repro.note, f"{path.name}: corpus cases must explain themselves"
    ok, report = replay(repro)
    assert ok, f"{path.name}: expectation broken\n{report.describe()}"


def test_corpus_specs_are_minimal():
    """Shrunk pins stay small — a bloated pin is a shrinker regression."""
    for path in CASES:
        repro = load_repro(path)
        assert repro.spec.op_count() <= 12, (
            f"{path.name}: {repro.spec.op_count()} ops"
        )


def test_cli_corpus_exit_code():
    from repro.verify.__main__ import main

    assert main(["corpus", str(CORPUS)]) == 0
