"""Tests for the scoped-epoch context managers.

``lock_epoch`` / ``lock_all_epoch`` / ``fence_epoch`` exist on the raw
:class:`repro.mpi.Window`, the CLaMPI :class:`CachedWindow` and the
block-cache baseline; each yields the wrapper it was called on, and the
exit path releases the epoch even when the body raises.
"""

import numpy as np
import pytest

from repro import clampi
from repro.baselines import BlockCachedWindow
from repro.mpi import SimMPI, Window
from repro.util import KiB


def fill_and_sync(m, win, nbytes):
    win.local_view(np.uint8)[:] = (np.arange(nbytes) + m.rank) % 251
    m.comm_world.barrier()


class TestRawWindow:
    def test_lock_epoch_round_trip(self):
        def program(m):
            win = Window.allocate(m.comm_world, 4 * KiB)
            fill_and_sync(m, win, 4 * KiB)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.lock_epoch(peer) as w:
                assert w is win
                win.get(buf, peer, 0)
                # unlock on exit flushes the outstanding get
            assert np.array_equal(buf, (np.arange(64) + peer) % 251)
            return win.eph

        results = SimMPI(nprocs=2).run(program)
        assert all(e >= 1 for e in results)

    def test_lock_all_epoch_and_fence_epoch(self):
        def program(m):
            win = Window.allocate(m.comm_world, 4 * KiB)
            fill_and_sync(m, win, 4 * KiB)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.lock_all_epoch():
                win.get(buf, peer, 0)
            eph_after_lock = win.eph
            with win.fence_epoch():
                win.get(buf, peer, 64)
            assert win.eph > eph_after_lock
            win.free()
            return True

        assert all(SimMPI(nprocs=2).run(program))

    def test_fence_epoch_scoping(self):
        from repro.mpi.errors import EpochError

        def program(m):
            win = Window.allocate(m.comm_world, 1 * KiB)
            m.comm_world.barrier()
            buf = np.empty(8, np.uint8)
            # a bare fence is a synchronisation boundary, not an RMA epoch
            win.fence()
            with pytest.raises(EpochError):
                win.get(buf, m.rank, 0)
            # mixing synchronisation modes inside the scoped epoch is an error
            with win.fence_epoch():
                with pytest.raises(EpochError):
                    win.lock(m.rank)
                with pytest.raises(EpochError):
                    win.lock_all()
            # ...and the epoch really closed on exit
            with pytest.raises(EpochError):
                win.get(buf, m.rank, 0)
            return True

        assert all(SimMPI(nprocs=2).run(program))

    def test_exception_still_unlocks(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 * KiB)
            m.comm_world.barrier()
            with pytest.raises(RuntimeError, match="boom"):
                with win.lock_epoch(m.rank):
                    raise RuntimeError("boom")
            # a fresh lock towards the same rank must succeed: the epoch
            # context released the previous lock on the error path
            with win.lock_epoch(m.rank):
                pass
            return True

        assert all(SimMPI(nprocs=2).run(program))


class TestCachedWindow:
    def test_lock_epoch_yields_cached_wrapper(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            fill_and_sync(m, win, 4 * KiB)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.lock_epoch(peer) as w:
                assert w is win  # the caching wrapper, not the raw window
                w.get_blocking(buf, peer, 0)
                w.get_blocking(buf, peer, 0)
            return win.stats.snapshot()

        for snap in SimMPI(nprocs=2).run(program):
            assert snap["gets"] == 2
            assert snap["hit_full"] == 1

    def test_fence_epoch_on_cached_window(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            fill_and_sync(m, win, 4 * KiB)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.fence_epoch() as w:
                w.get(buf, peer, 0)
            assert np.array_equal(buf, (np.arange(64) + peer) % 251)
            return True

        assert all(SimMPI(nprocs=2).run(program))


class TestBlockCacheBaseline:
    def test_lock_all_epoch(self):
        def program(m):
            raw = Window.allocate(m.comm_world, 4 * KiB)
            fill_and_sync(m, raw, 4 * KiB)
            win = BlockCachedWindow(raw, block_size=256, memory_bytes=8 * 256)
            peer = (m.rank + 1) % m.size
            buf = np.empty(64, np.uint8)
            with win.lock_all_epoch() as w:
                assert w is win
                w.get_blocking(buf, peer, 0)
                w.get_blocking(buf, peer, 0)
            assert np.array_equal(buf, (np.arange(64) + peer) % 251)
            return win.stats.gets, win.stats.block_hits

        for gets, hits in SimMPI(nprocs=2).run(program):
            assert gets == 2
            assert hits >= 1
