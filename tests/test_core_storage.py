"""Unit + property tests for the contiguous best-fit storage S_w."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.storage import Storage
from repro.util import CACHE_LINE, align_up


class TestAllocate:
    def test_simple_allocation(self):
        s = Storage(1024)
        d = s.allocate(100)
        assert d is not None
        assert d.offset == 0
        assert d.size == align_up(100)
        assert s.used_bytes == d.size

    def test_alignment_to_cache_line(self):
        s = Storage(1024)
        d1 = s.allocate(1)
        d2 = s.allocate(65)
        assert d1.size == CACHE_LINE
        assert d2.size == 2 * CACHE_LINE
        assert d2.offset % CACHE_LINE == 0

    def test_exhaustion_returns_none(self):
        s = Storage(256)
        assert s.allocate(256) is not None
        assert s.allocate(1) is None

    def test_too_big_returns_none(self):
        s = Storage(128)
        assert s.allocate(256) is None
        assert s.used_bytes == 0

    def test_best_fit_prefers_tightest_hole(self):
        s = Storage(1024)
        a = s.allocate(256)   # [0, 256)
        b = s.allocate(128)   # [256, 384)
        c = s.allocate(640)   # [384, 1024)
        s.release(a)          # hole of 256
        s.release(b)          # adjacent: coalesces to 384 hole... so split again
        # Re-create two separated holes: realloc the first part
        a2 = s.allocate(256)
        assert a2.offset == 0
        # holes now: [256, 384) of 128
        d = s.allocate(100)
        assert d.offset == 256, "best fit must use the tight 128-byte hole"

    def test_zero_byte_allocation_gets_a_line(self):
        s = Storage(256)
        d = s.allocate(0)
        assert d is not None and d.size == CACHE_LINE

    def test_negative_rejected(self):
        s = Storage(256)
        with pytest.raises(ValueError):
            s.allocate(-1)


class TestRelease:
    def test_release_restores_space(self):
        s = Storage(512)
        d = s.allocate(512)
        s.release(d)
        assert s.free_bytes == 512
        assert s.allocate(512) is not None

    def test_double_free_rejected(self):
        s = Storage(512)
        d = s.allocate(64)
        s.release(d)
        with pytest.raises(ValueError):
            s.release(d)

    def test_coalescing_both_sides(self):
        s = Storage(3 * CACHE_LINE)
        a = s.allocate(CACHE_LINE)
        b = s.allocate(CACHE_LINE)
        c = s.allocate(CACHE_LINE)
        s.release(a)
        s.release(c)
        assert s.num_free_regions == 2
        s.release(b)  # merges with both neighbours
        assert s.num_free_regions == 1
        assert s.largest_free() == 3 * CACHE_LINE
        s.check_invariants()

    def test_fragmentation_blocks_large_alloc(self):
        s = Storage(4 * CACHE_LINE)
        ds = [s.allocate(CACHE_LINE) for _ in range(4)]
        s.release(ds[0])
        s.release(ds[2])
        # 2 lines free but not adjacent
        assert s.free_bytes == 2 * CACHE_LINE
        assert s.allocate(2 * CACHE_LINE) is None


class TestAdjacentFree:
    def test_d_c_computation(self):
        s = Storage(4 * CACHE_LINE)
        a = s.allocate(CACHE_LINE)
        b = s.allocate(CACHE_LINE)
        c = s.allocate(CACHE_LINE)
        # layout: a b c [free CACHE_LINE]
        assert s.adjacent_free(a) == 0
        assert s.adjacent_free(c) == CACHE_LINE
        s.release(a)
        assert s.adjacent_free(b) == CACHE_LINE
        s.release(c)
        assert s.adjacent_free(b) == 3 * CACHE_LINE


class TestDataIntegrity:
    def test_write_read_roundtrip(self):
        s = Storage(1024)
        d = s.allocate(100)
        payload = np.arange(100, dtype=np.uint8)
        s.write(d, payload)
        assert np.array_equal(s.read(d, 100), payload)

    def test_write_too_big_rejected(self):
        s = Storage(1024)
        d = s.allocate(10)  # rounds to 64
        with pytest.raises(ValueError):
            s.write(d, np.zeros(65, np.uint8))

    def test_read_from_free_region_rejected(self):
        s = Storage(1024)
        d = s.allocate(64)
        s.release(d)
        with pytest.raises(ValueError):
            s.read(d, 1)

    def test_neighbouring_writes_do_not_clobber(self):
        s = Storage(1024)
        a = s.allocate(64)
        b = s.allocate(64)
        s.write(a, np.full(64, 1, np.uint8))
        s.write(b, np.full(64, 2, np.uint8))
        assert np.all(s.read(a, 64) == 1)
        assert np.all(s.read(b, 64) == 2)


class TestFirstFit:
    def test_first_fit_takes_lowest_offset_hole(self):
        s = Storage(4 * CACHE_LINE, fit="first")
        a = s.allocate(CACHE_LINE)
        b = s.allocate(2 * CACHE_LINE)
        s.release(a)
        # best fit would prefer the exact 1-line hole at the END? both holes
        # fit; first fit must take the offset-0 hole
        c = s.allocate(CACHE_LINE)
        assert c.offset == 0

    def test_unknown_fit_rejected(self):
        with pytest.raises(ValueError):
            Storage(1024, fit="worst")


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(1, 600)),
        min_size=1,
        max_size=150,
    ),
    fit=st.sampled_from(["best", "first"]),
)
def test_property_storage_never_overlaps_and_accounts(ops, fit):
    """Random alloc/free: regions disjoint, accounting exact, list coherent."""
    s = Storage(4096, fit=fit)
    live = []
    for kind, size in ops:
        if kind == 0 or not live:
            d = s.allocate(size)
            if d is not None:
                live.append(d)
        else:
            d = live.pop(size % len(live))
            s.release(d)
    s.check_invariants()
    regions = sorted((d.offset, d.end) for d in live)
    for (o1, e1), (o2, _e2) in zip(regions, regions[1:]):
        assert e1 <= o2, "live regions overlap"
    assert s.used_bytes == sum(e - o for o, e in regions)
