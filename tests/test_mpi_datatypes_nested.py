"""Deep-nesting and composition tests for the datatype library."""

import numpy as np
import pytest

from repro.mpi import (
    BYTE,
    FLOAT64,
    INT32,
    Contiguous,
    Indexed,
    SimMPI,
    Vector,
    Window,
)


class TestNesting:
    def test_vector_of_contiguous(self):
        inner = Contiguous(2, INT32)        # 8-byte blocks
        dt = Vector(3, 1, 2, inner)         # 3 blocks, stride 2 inners
        assert dt.size == 24
        assert dt.extent == (2 * 2 + 1) * 8
        assert dt.blocks() == [(0, 8), (16, 8), (32, 8)]

    def test_indexed_of_vector(self):
        strided = Vector(2, 1, 2, BYTE)     # bytes at 0 and 2, extent 3
        dt = Indexed((1, 1), (0, 2), strided)
        # element 0 at displacement 0: blocks (0,1),(2,1)
        # element 1 at displacement 2*3=6: blocks (6,1),(8,1)
        assert dt.blocks() == [(0, 1), (2, 1), (6, 1), (8, 1)]
        assert dt.size == 4

    def test_contiguous_of_vector_flattens(self):
        strided = Vector(2, 1, 2, BYTE)
        dt = Contiguous(2, strided)
        assert dt.size == 4
        total = sum(s for _o, s in dt.flatten(1))
        assert total == 4

    def test_three_levels(self):
        l1 = Contiguous(2, BYTE)
        l2 = Vector(2, 1, 2, l1)
        l3 = Contiguous(3, l2)
        assert l3.size == 3 * 2 * 2
        blocks = l3.flatten(2)
        assert sum(s for _o, s in blocks) == l3.transfer_size(2)
        offsets = [o for o, _s in blocks]
        assert offsets == sorted(offsets)

    def test_transfer_through_window_with_nested_type(self):
        def program(m):
            win = Window.allocate(m.comm_world, 256)
            win.local_view(np.uint8)[:] = np.arange(256) % 256
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            inner = Contiguous(2, BYTE)
            dt = Vector(3, 1, 2, inner)  # bytes {0,1}, {4,5}, {8,9}
            buf = np.empty(6, np.uint8)
            win.lock(1)
            win.get(buf, 1, 10, count=1, datatype=dt)
            win.unlock(1)
            return buf.tolist()

        results = SimMPI(nprocs=2).run(program)
        assert results[0] == [10, 11, 14, 15, 18, 19]

    def test_extent_vs_size_bookkeeping(self):
        dt = Vector(4, 1, 3, FLOAT64)
        assert dt.size == 32          # 4 payload elements
        assert dt.extent == 80        # spans 10 element slots
        assert dt.flatten(1)[-1] == (72, 8)
