"""Tests for the redesigned CLaMPI facade.

Pins the single-point config resolution (info > mode > config.mode),
the configure()/stats() helpers, the schema-versioned snapshot and the
AccessType-keyed breakdown.
"""

import numpy as np
import pytest

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB


class TestResolveConfig:
    def test_default(self):
        cfg = clampi.resolve_config()
        assert cfg == clampi.Config()
        assert cfg.mode is clampi.Mode.TRANSPARENT

    def test_config_mode_survives(self):
        cfg = clampi.resolve_config(
            clampi.Config(mode=clampi.Mode.ALWAYS_CACHE)
        )
        assert cfg.mode is clampi.Mode.ALWAYS_CACHE

    def test_mode_kwarg_beats_config(self):
        cfg = clampi.resolve_config(
            clampi.Config(mode=clampi.Mode.ALWAYS_CACHE),
            mode=clampi.Mode.USER_DEFINED,
        )
        assert cfg.mode is clampi.Mode.USER_DEFINED

    def test_info_beats_mode_kwarg(self):
        cfg = clampi.resolve_config(
            clampi.Config(mode=clampi.Mode.ALWAYS_CACHE),
            mode=clampi.Mode.USER_DEFINED,
            info={clampi.INFO_MODE_KEY: clampi.Mode.TRANSPARENT.value},
        )
        assert cfg.mode is clampi.Mode.TRANSPARENT

    def test_info_without_mode_key_is_ignored(self):
        cfg = clampi.resolve_config(
            mode=clampi.Mode.USER_DEFINED, info={"unrelated": "x"}
        )
        assert cfg.mode is clampi.Mode.USER_DEFINED

    def test_non_mode_fields_untouched(self):
        base = clampi.Config(index_entries=128, storage_bytes=4 * KiB)
        cfg = clampi.resolve_config(base, mode=clampi.Mode.ALWAYS_CACHE)
        assert cfg.index_entries == 128
        assert cfg.storage_bytes == 4 * KiB
        # resolve_config never mutates its input
        assert base.mode is clampi.Config().mode

    def test_bad_info_mode_raises(self):
        with pytest.raises(ValueError):
            clampi.resolve_config(info={clampi.INFO_MODE_KEY: "bogus"})


class TestConfigure:
    def test_returns_config(self):
        cfg = clampi.configure(index_entries=64, adaptive=True)
        assert isinstance(cfg, clampi.Config)
        assert cfg.index_entries == 64
        assert cfg.adaptive

    def test_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            clampi.configure(no_such_option=1)


class TestFacadeExports:
    def test_all_exports_resolve(self):
        for name in clampi.__all__:
            assert hasattr(clampi, name), name

    def test_new_api_in_all(self):
        for name in ("configure", "resolve_config", "stats", "SCHEMA_VERSION"):
            assert name in clampi.__all__


class TestStatsSchema:
    def test_breakdown_keys_match_access_types(self):
        stats = clampi.CacheStats()
        assert list(stats.breakdown()) == [a.value for a in clampi.AccessType]

    def test_snapshot_carries_schema_version(self):
        snap = clampi.CacheStats().snapshot()
        assert snap["schema_version"] == clampi.SCHEMA_VERSION

    def test_stats_helper_and_info_mode_end_to_end(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                16 * KiB,
                info={clampi.INFO_MODE_KEY: clampi.Mode.ALWAYS_CACHE.value},
            )
            assert win.config.mode is clampi.Mode.ALWAYS_CACHE
            win.local_view(np.uint8)[:] = m.rank
            m.comm_world.barrier()
            peer = (m.rank + 1) % m.size
            buf = np.empty(128, np.uint8)
            with win.lock_epoch(peer):
                win.get_blocking(buf, peer, 0)
                win.get_blocking(buf, peer, 0)
            s = clampi.stats(win)
            assert s is win.stats
            return s.snapshot()

        results = SimMPI(nprocs=2).run(program)
        for snap in results:
            assert snap["schema_version"] == clampi.SCHEMA_VERSION
            assert snap["gets"] == 2
            assert snap["hit_full"] == 1


class TestPolicyResolution:
    """The unified policy-selection funnel (info > kwarg > config > env)."""

    def test_default_policy(self):
        assert clampi.resolve_config().policy == clampi.DEFAULT_POLICY

    def test_policy_kwarg(self):
        cfg = clampi.resolve_config(policy="lru")
        assert cfg.policy == "lru"

    def test_config_policy_survives(self):
        cfg = clampi.resolve_config(clampi.Config(policy="gdsf"))
        assert cfg.policy == "gdsf"

    def test_policy_kwarg_beats_config(self):
        cfg = clampi.resolve_config(clampi.Config(policy="gdsf"), policy="lru")
        assert cfg.policy == "lru"

    def test_info_beats_policy_kwarg(self):
        cfg = clampi.resolve_config(
            policy="lru", info={clampi.INFO_POLICY_KEY: "slru"}
        )
        assert cfg.policy == "slru"

    def test_env_var_is_last_resort(self, monkeypatch):
        monkeypatch.setenv(clampi.ENV_POLICY_VAR, "tinylfu")
        assert clampi.resolve_config().policy == "tinylfu"

    def test_explicit_channels_beat_env(self, monkeypatch):
        monkeypatch.setenv(clampi.ENV_POLICY_VAR, "tinylfu")
        assert clampi.resolve_config(policy="lru").policy == "lru"
        assert (
            clampi.resolve_config(clampi.Config(policy="gdsf")).policy == "gdsf"
        )
        assert (
            clampi.resolve_config(
                info={clampi.INFO_POLICY_KEY: "slru"}
            ).policy
            == "slru"
        )

    def test_bad_env_policy_raises(self, monkeypatch):
        monkeypatch.setenv(clampi.ENV_POLICY_VAR, "bogus")
        with pytest.raises(ValueError):
            clampi.resolve_config()

    def test_legacy_alias_through_info(self):
        cfg = clampi.resolve_config(info={clampi.INFO_POLICY_KEY: "full"})
        assert cfg.policy == "clampi-full"

    def test_enum_kwarg_warns_deprecated(self):
        with pytest.warns(DeprecationWarning):
            cfg = clampi.resolve_config(policy=clampi.EvictionPolicy.TEMPORAL)
        assert cfg.policy == "clampi-temporal"

    def test_bad_policy_raises(self):
        with pytest.raises(ValueError):
            clampi.resolve_config(policy="no-such")

    def test_registry_exports_on_facade(self):
        assert "lru" in clampi.available_policies()
        p = clampi.make_policy("lru")
        assert isinstance(p, clampi.CachePolicy)
        for name in (
            "register",
            "available_policies",
            "canonical_policy_name",
            "INFO_POLICY_KEY",
            "ENV_POLICY_VAR",
            "DEFAULT_POLICY",
        ):
            assert name in clampi.__all__

    def test_info_policy_end_to_end(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                4 * KiB,
                mode=clampi.Mode.ALWAYS_CACHE,
                info={clampi.INFO_POLICY_KEY: "lru"},
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock_all()
            win.get_blocking(np.empty(64, np.uint8), 1, 0)
            win.unlock_all()
            return win.policy_name, clampi.stats(win).snapshot()

        name, snap = SimMPI(nprocs=2).run(program)[0]
        assert name == "lru"
        assert snap["policy"] == "lru"

    def test_policy_kwarg_end_to_end(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world,
                4 * KiB,
                mode=clampi.Mode.ALWAYS_CACHE,
                policy="slru",
            )
            return win.policy_name

        assert SimMPI(nprocs=2).run(program)[0] == "slru"

    def test_snapshot_policy_default(self):
        def program(m):
            win = clampi.window_allocate(m.comm_world, 1 * KiB)
            return win.stats.snapshot()

        snap = SimMPI(nprocs=1).run(program)[0]
        assert snap["policy"] == clampi.DEFAULT_POLICY
        assert snap["admission_rejects"] == 0

    def test_unattached_stats_policy_empty(self):
        assert clampi.CacheStats().snapshot()["policy"] == ""
