"""Tests for the policy-matrix benchmark harness (repro.bench.policies).

The full matrix runs in CI via ``python -m repro.bench policies --quick``;
here we pin the cheap pieces: trace flattening, the replay program, the
hit-rate helper and the baseline-regression checker.
"""

import json
from pathlib import Path

import numpy as np

from repro.bench.policies import (
    DEFAULT_POLICY,
    _flatten_trace,
    _hit_rate,
    _replay_program,
    check_regression,
    render_tables,
)
from repro.apps.cachespec import CacheSpec
from repro.mpi import SimMPI
from repro.net import PerfModel
from repro.trace import GetRecord


class TestFlattenTrace:
    def test_distinct_keys_stay_distinct(self):
        records = [
            GetRecord(0, 0, 64),
            GetRecord(1, 0, 64),   # same dsp, different target rank
            GetRecord(2, 0, 64),
            GetRecord(1, 128, 32),
        ]
        gets, window = _flatten_trace(records)
        assert len(set(gets)) == 4
        assert all(dsp + size <= window for dsp, size in gets)

    def test_repeats_collapse_to_same_key(self):
        records = [GetRecord(1, 64, 32)] * 3 + [GetRecord(2, 64, 32)]
        gets, _ = _flatten_trace(records)
        assert gets[0] == gets[1] == gets[2]
        assert gets[3] != gets[0]

    def test_order_preserved(self):
        records = [GetRecord(0, i * 64, 64) for i in range(5)]
        gets, _ = _flatten_trace(records)
        assert [dsp for dsp, _ in gets] == [i * 64 for i in range(5)]


class TestReplayProgram:
    def test_replay_verifies_data_and_returns_snapshot(self):
        gets = [(0, 64), (128, 32), (0, 64), (0, 64)]
        spec = CacheSpec.clampi_fixed(32, 4096, policy="lru")
        mpi = SimMPI(nprocs=2, perf=PerfModel.spread(2))
        snap = mpi.run(_replay_program, gets, 1024, spec)[0]
        assert snap["gets"] == 4
        assert snap["policy"] == "lru"
        assert _hit_rate(snap) > 0  # the repeated get must hit


class TestHitRate:
    def test_zero_on_empty(self):
        assert _hit_rate({}) == 0.0

    def test_counts_all_hit_flavours(self):
        snap = {"gets": 10, "hit_full": 2, "hit_partial": 1, "hit_pending": 1}
        assert _hit_rate(snap) == 0.4


def _artifact(quick=True, wall=1.0, virtual=0.5, hit=0.25):
    return {
        "quick": quick,
        "default_policy": DEFAULT_POLICY,
        "workloads": {
            "fig02-reuse": {
                DEFAULT_POLICY: {
                    "wall_s": wall,
                    "virtual_s": virtual,
                    "hit_rate": hit,
                    "admission_rejects": 0,
                },
                "tinylfu": {
                    "wall_s": wall,
                    "virtual_s": virtual * 0.9,
                    "hit_rate": hit + 0.1,
                    "admission_rejects": 5,
                },
            }
        },
        "total_wall_s": wall,
    }


class TestCheckRegression:
    def _write(self, tmp_path, artifact) -> Path:
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps(artifact))
        return p

    def test_identical_passes(self, tmp_path):
        base = self._write(tmp_path, _artifact())
        assert check_regression(_artifact(), base) == []

    def test_scale_mismatch_rejected(self, tmp_path):
        base = self._write(tmp_path, _artifact(quick=False))
        problems = check_regression(_artifact(quick=True), base)
        assert problems and "scale" in problems[0]

    def test_wall_regression_detected(self, tmp_path):
        base = self._write(tmp_path, _artifact(wall=1.0))
        problems = check_regression(_artifact(wall=2.5), base)
        assert any("wall-clock" in p for p in problems)

    def test_wall_within_factor_passes(self, tmp_path):
        base = self._write(tmp_path, _artifact(wall=1.0))
        assert check_regression(_artifact(wall=1.9), base) == []

    def test_default_policy_virtual_drift_detected(self, tmp_path):
        base = self._write(tmp_path, _artifact(virtual=0.5))
        problems = check_regression(_artifact(virtual=0.5000001), base)
        assert any("virtual time drifted" in p for p in problems)

    def test_default_policy_hit_rate_drift_detected(self, tmp_path):
        base = self._write(tmp_path, _artifact(hit=0.25))
        problems = check_regression(_artifact(hit=0.26), base)
        assert any("hit rate drifted" in p for p in problems)

    def test_non_default_policies_may_drift(self, tmp_path):
        base = self._write(tmp_path, _artifact())
        drifted = _artifact()
        drifted["workloads"]["fig02-reuse"]["tinylfu"]["virtual_s"] = 99.0
        assert check_regression(drifted, base) == []


class TestRenderTables:
    def test_contains_policies_and_headline(self):
        out = render_tables(_artifact())
        assert "fig02-reuse" in out
        assert DEFAULT_POLICY in out
        assert "tinylfu" in out
        assert "hit rate" in out
        # the best-hit-rate policy is starred
        starred = [ln for ln in out.splitlines() if ln.endswith("*")]
        assert len(starred) == 1 and "tinylfu" in starred[0]
