"""Tests for request-based RMA operations (MPI_Rget / MPI_Rput)."""

import numpy as np
import pytest

from repro.mpi import SimMPI, Window


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestRequests:
    def test_rget_wait_delivers_data(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = m.rank + 5
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.int64)
            req = win.rget(buf, (m.rank + 1) % m.size, 0)
            req.wait()
            win.unlock_all()
            return int(buf[0]), req.done

        results, _ = run(2, program)
        assert results[0] == (6, True)
        assert results[1] == (5, True)

    def test_wait_advances_clock(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return 0.0
            win.lock(1)
            buf = np.empty(32 * 1024, np.uint8)
            t0 = m.time
            req = win.rget(buf, 1, 0)
            issued = m.time - t0
            req.wait()
            waited = m.time - t0
            win.unlock(1)
            return issued, waited

        results, _ = run(2, program)
        issued, waited = results[0]
        assert issued < 1e-6      # posting is cheap
        assert waited > 2e-6      # waiting paid the transfer

    def test_test_turns_true_after_compute(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock(1)
            buf = np.empty(16 * 1024, np.uint8)
            req = win.rget(buf, 1, 0)
            early = req.test()
            m.compute(1e-3)  # plenty of time for the transfer to land
            late = req.test()
            win.unlock(1)
            return early, late

        results, _ = run(2, program)
        assert results[0] == (False, True)

    def test_wait_does_not_close_epoch(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            eph_after_wait = win.eph
            win.flush(0)
            win.unlock_all()
            return eph_after_wait, win.eph

        results, _ = run(2, program)
        assert results[0] == (0, 2)

    def test_flush_after_wait_is_harmless(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            t0 = m.time
            win.flush(0)  # the op is already completed and removed
            dt = m.time - t0
            win.unlock_all()
            return dt

        results, _ = run(2, program)
        assert results[0] < 1e-6

    def test_rput_roundtrip(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            if m.rank == 0:
                win.lock(1)
                req = win.rput(np.full(8, 7, np.int64), 1, 0)
                req.wait()
                win.unlock(1)
            m.comm_world.barrier()
            return win.local_view(np.int64)[0] if m.rank == 1 else None

        results, _ = run(2, program)
        assert results[1] == 7

    def test_double_wait_idempotent(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            t = m.time
            req.wait()
            assert m.time == t
            win.unlock_all()
            return True

        results, _ = run(1, program)
        assert results == [True]
