"""Tests for request-based RMA operations (MPI_Rget / MPI_Rput)."""

import numpy as np
import pytest

from repro.mpi import SimMPI, Window


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestRequests:
    def test_rget_wait_delivers_data(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = m.rank + 5
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.int64)
            req = win.rget(buf, (m.rank + 1) % m.size, 0)
            req.wait()
            win.unlock_all()
            return int(buf[0]), req.done

        results, _ = run(2, program)
        assert results[0] == (6, True)
        assert results[1] == (5, True)

    def test_wait_advances_clock(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return 0.0
            win.lock(1)
            buf = np.empty(32 * 1024, np.uint8)
            t0 = m.time
            req = win.rget(buf, 1, 0)
            issued = m.time - t0
            req.wait()
            waited = m.time - t0
            win.unlock(1)
            return issued, waited

        results, _ = run(2, program)
        issued, waited = results[0]
        assert issued < 1e-6      # posting is cheap
        assert waited > 2e-6      # waiting paid the transfer

    def test_test_turns_true_after_compute(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock(1)
            buf = np.empty(16 * 1024, np.uint8)
            req = win.rget(buf, 1, 0)
            early = req.test()
            m.compute(1e-3)  # plenty of time for the transfer to land
            late = req.test()
            win.unlock(1)
            return early, late

        results, _ = run(2, program)
        assert results[0] == (False, True)

    def test_wait_does_not_close_epoch(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            eph_after_wait = win.eph
            win.flush(0)
            win.unlock_all()
            return eph_after_wait, win.eph

        results, _ = run(2, program)
        assert results[0] == (0, 2)

    def test_flush_after_wait_is_harmless(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            t0 = m.time
            win.flush(0)  # the op is already completed and removed
            dt = m.time - t0
            win.unlock_all()
            return dt

        results, _ = run(2, program)
        assert results[0] < 1e-6

    def test_rput_roundtrip(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            m.comm_world.barrier()
            if m.rank == 0:
                win.lock(1)
                req = win.rput(np.full(8, 7, np.int64), 1, 0)
                req.wait()
                win.unlock(1)
            m.comm_world.barrier()
            return win.local_view(np.int64)[0] if m.rank == 1 else None

        results, _ = run(2, program)
        assert results[1] == 7

    def test_double_wait_idempotent(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.lock_all()
            buf = np.empty(8, np.uint8)
            req = win.rget(buf, 0, 0)
            req.wait()
            t = m.time
            req.wait()
            assert m.time == t
            win.unlock_all()
            return True

        results, _ = run(1, program)
        assert results == [True]

    def test_done_ordering_through_test_and_wait(self):
        """``done`` is False until completion is *observed* (test/wait)."""

        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock(1)
            buf = np.empty(32 * 1024, np.uint8)
            req = win.rget(buf, 1, 0)
            after_issue = req.done
            probed_early = req.test()
            after_early_probe = req.done
            req.wait()
            after_wait = req.done
            # test() after wait stays True and charges nothing.
            t = m.time
            probed_late = req.test()
            assert m.time == t
            win.unlock(1)
            return (
                after_issue,
                probed_early,
                after_early_probe,
                after_wait,
                probed_late,
            )

        results, _ = run(2, program)
        assert results[0] == (False, False, False, True, True)

    def test_done_flips_via_successful_test(self):
        def program(m):
            win = Window.allocate(m.comm_world, 1 << 16)
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock(1)
            buf = np.empty(16 * 1024, np.uint8)
            req = win.rget(buf, 1, 0)
            m.compute(1e-3)  # let the transfer land on the virtual clock
            assert req.test() is True
            win.unlock(1)
            return req.done

        results, _ = run(2, program)
        assert results[0] is True

    def test_wait_after_epoch_close_is_harmless(self):
        """Closing the epoch completes the op; a later wait must not
        re-complete it, corrupt the pending list or reopen the epoch."""

        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = m.rank + 5
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.int64)
            req = win.rget(buf, (m.rank + 1) % m.size, 0)
            done_before = req.done
            win.unlock_all()  # epoch close completes every pending op
            eph = win.eph
            req.wait()  # observed after the fact: harmless
            assert req.test() is True
            # wait() is not an epoch event: eph unchanged, data delivered.
            return done_before, req.done, win.eph == eph, int(buf[0])

        results, _ = run(2, program)
        assert results[0] == (False, True, True, 6)
        assert results[1] == (False, True, True, 5)

    def test_window_usable_after_late_wait(self):
        def program(m):
            win = Window.allocate(m.comm_world, 64)
            win.local_view(np.int64)[:] = 3 * (m.rank + 1)
            m.comm_world.barrier()
            win.lock_all()
            buf = np.empty(8, np.int64)
            req = win.rget(buf, (m.rank + 1) % m.size, 0)
            win.unlock_all()
            req.wait()
            # A fresh epoch on the same window still works end to end.
            win.lock_all()
            buf2 = np.empty(8, np.int64)
            req2 = win.rget(buf2, (m.rank + 1) % m.size, 0)
            req2.wait()
            win.unlock_all()
            return int(buf[0]), int(buf2[0])

        results, _ = run(2, program)
        assert results[0] == (6, 6)
        assert results[1] == (3, 3)
