"""Deliberately buggy RMA fixtures: the sanitizer must catch each one.

Each program runs on the real simulator (SimMPI + windows + CLaMPI) and
contains one seeded MPI-usage bug; the tests assert the sanitizer reports
the *right* violation kind and, where conflicting ops are involved, the
right op pair.  The strict-mode test checks the error surfaces at the
violating call site as a typed exception carried by RankFailedError.
"""

import numpy as np
import pytest

from repro import clampi
from repro.analysis import ViolationKind, sanitize
from repro.mpi import RMARaceError, SimMPI
from repro.runtime import RankFailedError


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program)


# ---------------------------------------------------------------------------
# fixture programs (each seeds exactly one bug)
# ---------------------------------------------------------------------------
def put_get_race_program(m):
    """BUG: rank 0's unflushed put races rank 1's get on rank 2's window."""
    from repro.mpi import Window

    win = Window.allocate(m.comm_world, 256)
    m.comm_world.barrier()
    win.lock_all()
    if m.rank == 0:
        win.put(np.full(64, 7, np.uint8), 2, 0)      # bytes [0, 64), no flush
    m.comm_world.barrier()
    if m.rank == 1:
        out = np.empty(64, np.uint8)
        win.get(out, 2, 32)                          # bytes [32, 96): overlap
    m.comm_world.barrier()
    win.unlock_all()


def missing_flush_program(m):
    """BUG: rank 0 reuses a get's destination buffer before flushing."""
    from repro.mpi import Window

    win = Window.allocate(m.comm_world, 256)
    m.comm_world.barrier()
    win.lock_all()
    if m.rank == 0:
        buf = np.empty(64, np.uint8)
        win.get(buf, 1, 0)
        win.put(buf, 1, 64)                          # reads undefined bytes
        win.flush_all()
    m.comm_world.barrier()
    win.unlock_all()


def leaky_epoch_program(m):
    """BUG: rank 0 locks rank 1 and returns without unlocking."""
    from repro.mpi import Window

    win = Window.allocate(m.comm_world, 64)
    m.comm_world.barrier()
    if m.rank == 0:
        win.lock(1)
    return m.rank


def stale_cache_program(m):
    """BUG: rank 1's put to rank 2 invalidates nothing on rank 0's cache."""
    win = clampi.window_allocate(
        m.comm_world, 4096, mode=clampi.Mode.ALWAYS_CACHE
    )
    win.local_view(np.uint8)[:] = m.rank
    m.comm_world.barrier()
    with win.lock_all_epoch():
        buf = np.empty(256, np.uint8)
        if m.rank == 0:
            win.get_blocking(buf, 2, 0)              # miss: fills the cache
        m.comm_world.barrier()
        if m.rank == 1:
            win.put(np.full(256, 99, np.uint8), 2, 0)
            win.flush(2)
        m.comm_world.barrier()
        if m.rank == 0:
            win.get_blocking(buf, 2, 0)              # full hit: stale bytes
    return int(buf[0]) if m.rank == 0 else None


# ---------------------------------------------------------------------------
# report mode: right kind, right op pair
# ---------------------------------------------------------------------------
class TestReportMode:
    def test_put_get_race_detected(self):
        with sanitize() as san:
            run(3, put_get_race_program)
        races = [
            v for v in san.violations if v.kind is ViolationKind.RACE_PUT_GET
        ]
        assert len(races) == 1
        a, b = races[0].ops
        assert (a.op, a.origin) == ("put", 0)
        assert (b.op, b.origin) == ("get", 1)
        assert a.target == b.target == 2
        # the reported overlap is the put/get intersection on rank 2's window
        assert (max(a.lo, b.lo), min(a.hi, b.hi)) == (32, 64)

    def test_missing_flush_detected(self):
        with sanitize() as san:
            run(2, missing_flush_program)
        hazards = [
            v
            for v in san.violations
            if v.kind is ViolationKind.LOCAL_BUFFER_HAZARD
        ]
        assert len(hazards) == 1
        g, p = hazards[0].ops
        assert (g.op, p.op) == ("get", "put")
        assert hazards[0].rank == 0

    def test_leaked_epoch_detected(self):
        with sanitize() as san:
            run(2, leaky_epoch_program)
        assert [v.kind for v in san.violations] == [ViolationKind.EPOCH_LEAK]
        assert "rank 0" in san.violations[0].message
        assert "lock(1)" in san.violations[0].message

    def test_stale_cache_hit_detected(self):
        with sanitize() as san:
            results = run(3, stale_cache_program)
        stale = [
            v
            for v in san.violations
            if v.kind is ViolationKind.STALE_CACHE_HIT
        ]
        assert len(stale) == 1
        assert stale[0].rank == 0
        (w,) = stale[0].ops
        assert w.op == "put" and w.origin == 1
        # ... and the hit really did serve stale data (old contents of rank 2)
        assert results[0] == 2


# ---------------------------------------------------------------------------
# strict mode: typed raise at the violating call site
# ---------------------------------------------------------------------------
class TestStrictMode:
    def test_race_raises_at_call_site(self):
        with pytest.raises(RankFailedError) as exc:
            with sanitize(strict=True):
                run(3, put_get_race_program)
        original = exc.value.original
        assert isinstance(original, RMARaceError)
        # the message carries both conflicting op records
        assert "put" in str(original) and "get" in str(original)
        assert "rank 0" in str(original) and "rank 1" in str(original)

    def test_failing_rank_is_the_violating_one(self):
        with pytest.raises(RankFailedError) as exc:
            with sanitize(strict=True):
                run(3, put_get_race_program)
        assert exc.value.rank == 1  # the get is the second, detecting op

    def test_clean_program_passes_strict(self):
        def clean(m):
            from repro.mpi import Window

            win = Window.allocate(m.comm_world, 256)
            m.comm_world.barrier()
            win.lock_all()
            if m.rank == 0:
                win.put(np.full(64, 7, np.uint8), 1, 0)
                win.flush(1)
            m.comm_world.barrier()
            if m.rank == 2:
                out = np.empty(64, np.uint8)
                win.get(out, 1, 0)
            win.unlock_all()

        with sanitize(strict=True) as san:
            run(3, clean)
        assert san.violations == []
