"""Fast smoke tests of the figure-reproduction entry points.

The full-size runs live in ``benchmarks/``; these only verify that each
function produces a well-formed FigureResult at toy scale (structure, row
shapes, note/claim plumbing), so regressions surface in the quick suite.
"""

import pytest

from repro.bench import figures
from repro.bench.figures import ALL_FIGURES, PAPER_SCALE_KWARGS
from repro.bench.reporting import FigureResult
from repro.util import KiB


def check_shape(fig: FigureResult):
    assert isinstance(fig, FigureResult)
    assert fig.rows, f"{fig.figure} produced no rows"
    for row in fig.rows:
        assert len(row) == len(fig.headers), f"{fig.figure} ragged row {row}"
    assert fig.claims, f"{fig.figure} asserts nothing"
    fig.render()
    fig.markdown()
    fig.chart()


class TestRegistry:
    def test_paper_scale_covers_all_figures(self):
        assert set(PAPER_SCALE_KWARGS) == set(ALL_FIGURES)

    def test_all_figures_are_callables(self):
        for fn in ALL_FIGURES.values():
            assert callable(fn)
            assert fn.__doc__


class TestTinyRuns:
    def test_fig01(self):
        check_shape(figures.fig01_latency(sizes=[64, 4096]))

    def test_fig02(self):
        check_shape(figures.fig02_reuse(nbodies=120, nprocs=2))

    def test_fig03(self):
        check_shape(figures.fig03_sizes(scale=8, edge_factor=8, nprocs=4))

    def test_fig07(self):
        fig = figures.fig07_access_costs(
            n_distinct=120, z=1200, data_sizes=[1 * KiB, 4 * KiB]
        )
        check_shape(fig)
        # the foMPI reference row must be populated for every size
        assert all(v != "-" for v in fig.rows[0][1:])

    def test_fig09(self):
        check_shape(figures.fig09_adaptive(n_distinct=150, z=1500, hash_sizes=[40, 300]))

    def test_fig10(self):
        check_shape(
            figures.fig10_fragmentation(
                n_distinct=150, z=3000, index_entries=200, checkpoints=4
            )
        )

    def test_fig11(self):
        check_shape(
            figures.fig11_victim(n_distinct=150, z=2000, hash_sizes=[200, 1200])
        )

    def test_fig13(self):
        check_shape(
            figures.fig13_bh_stats(
                nbodies=150, nprocs=2, index_entries_list=[16, 512]
            )
        )

    def test_fig16(self):
        check_shape(figures.fig16_lcc_stats(scale=8, edge_factor=8, nprocs=4))

    def test_fig18(self):
        check_shape(
            figures.fig18_lcc_weak_stats(
                verts_per_pe_log2=6, edge_factor=8, procs=[2, 4], storage=256 * KiB,
                index_entries=2048,
            )
        )
