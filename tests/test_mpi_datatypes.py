"""Unit tests for the MPI datatype library and flattening (paper Sec. II-B)."""

import numpy as np
import pytest

from repro.mpi import BYTE, FLOAT64, INT32, Contiguous, Indexed, Vector
from repro.mpi.datatypes import from_numpy
from repro.mpi.errors import DatatypeError


class TestPredefined:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT32.size == 4
        assert FLOAT64.size == 8

    def test_extent_equals_size(self):
        for dt in (BYTE, INT32, FLOAT64):
            assert dt.extent == dt.size

    def test_blocks_single(self):
        assert FLOAT64.blocks() == [(0, 8)]

    def test_contiguity(self):
        assert INT32.is_contiguous()

    def test_flatten_coalesces_count(self):
        assert INT32.flatten(5) == [(0, 20)]

    def test_from_numpy_roundtrip(self):
        assert from_numpy(np.float64) is FLOAT64
        assert from_numpy(np.uint8) is BYTE
        assert from_numpy(np.int32) is INT32

    def test_from_numpy_unknown_dtype(self):
        dt = from_numpy(np.float16)
        assert dt.size == 2


class TestContiguous:
    def test_size_and_extent(self):
        dt = Contiguous(10, FLOAT64)
        assert dt.size == 80
        assert dt.extent == 80
        assert dt.is_contiguous()

    def test_nested(self):
        dt = Contiguous(3, Contiguous(2, INT32))
        assert dt.size == 24
        assert dt.flatten(2) == [(0, 48)]

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            Contiguous(-1, BYTE)

    def test_transfer_size(self):
        assert Contiguous(4, INT32).transfer_size(3) == 48


class TestVector:
    def test_strided_blocks(self):
        # 3 blocks of 2 int32, stride 4 elements
        dt = Vector(3, 2, 4, INT32)
        assert dt.size == 24
        assert dt.extent == (2 * 4 + 2) * 4
        assert dt.blocks() == [(0, 8), (16, 8), (32, 8)]
        assert not dt.is_contiguous()

    def test_dense_vector_coalesces(self):
        dt = Vector(3, 2, 2, INT32)
        assert dt.blocks() == [(0, 24)]
        assert dt.is_contiguous()

    def test_flatten_multiple_elements(self):
        dt = Vector(2, 1, 2, BYTE)  # blocks at 0 and 2, extent 3
        assert dt.extent == 3
        assert dt.flatten(2) == [(0, 1), (2, 2), (5, 1)]

    def test_overlapping_stride_rejected(self):
        with pytest.raises(DatatypeError):
            Vector(2, 4, 2, BYTE)

    def test_empty_vector(self):
        dt = Vector(0, 2, 4, INT32)
        assert dt.size == 0
        assert dt.extent == 0
        assert dt.flatten(3) == []


class TestIndexed:
    def test_irregular_blocks(self):
        dt = Indexed((2, 1), (0, 4), INT32)
        assert dt.size == 12
        assert dt.extent == 20
        assert dt.blocks() == [(0, 8), (16, 4)]

    def test_adjacent_blocks_coalesce(self):
        dt = Indexed((2, 3), (0, 2), BYTE)
        assert dt.blocks() == [(0, 5)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed((1, 2), (0,), BYTE)

    def test_overlap_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed((4, 2), (0, 2), BYTE).blocks()

    def test_size_of_paper_definition(self):
        """size(x) = sum of block sizes * count (Sec. II-B)."""
        dt = Indexed((3, 5), (0, 10), BYTE)
        assert dt.transfer_size(4) == (3 + 5) * 4


class TestFlattenInvariants:
    def test_flatten_total_equals_size_times_count(self):
        cases = [
            (Contiguous(7, FLOAT64), 3),
            (Vector(4, 2, 5, INT32), 2),
            (Indexed((1, 2, 3), (0, 3, 9), BYTE), 5),
        ]
        for dt, count in cases:
            total = sum(size for _off, size in dt.flatten(count))
            assert total == dt.transfer_size(count)

    def test_flatten_blocks_sorted_and_disjoint(self):
        dt = Vector(5, 3, 7, BYTE)
        blocks = dt.flatten(4)
        for (o1, s1), (o2, _s2) in zip(blocks, blocks[1:]):
            assert o1 + s1 < o2  # disjoint and non-adjacent (coalesced)

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            BYTE.flatten(-1)
