"""Focused unit tests for CachedWindow internals not covered elsewhere."""

import numpy as np
import pytest

from repro import clampi
from repro.core.states import EntryState
from repro.mpi import SimMPI
from repro.util import KiB


def run(nprocs, program, **kwargs):
    mpi = SimMPI(nprocs=nprocs, **kwargs)
    return mpi.run(program), mpi


class TestIntrospection:
    def test_seq_and_ags_tracking(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock_all()
            win.get_blocking(np.empty(100, np.uint8), 1, 0)
            win.get_blocking(np.empty(300, np.uint8), 1, 1024)
            win.unlock_all()
            return win.seq_index, win.avg_get_size

        results, _ = run(2, program)
        seq, ags = results[0]
        assert seq == 2
        assert ags == pytest.approx(200.0)

    def test_ags_zero_before_any_get(self):
        def program(m):
            win = clampi.window_allocate(m.comm_world, 256)
            return win.avg_get_size, win.seq_index

        results, _ = run(1, program)
        assert results[0] == (0.0, 0)

    def test_index_and_storage_exposed(self):
        def program(m):
            cfg = clampi.Config(index_entries=128, storage_bytes=64 * KiB)
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE, config=cfg
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            win.lock_all()
            win.get_blocking(np.empty(100, np.uint8), 1, 0)
            win.unlock_all()
            return (
                win.index.capacity,
                len(win.index),
                win.storage.capacity,
                win.storage.used_bytes,
            )

        results, _ = run(2, program)
        cap, live, scap, used = results[0]
        assert cap == 128 and live == 1
        assert scap == 64 * KiB
        assert used == 128  # 100 B aligned to two cache lines

    def test_entry_states_after_flush(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            buf = np.empty(100, np.uint8)
            win.lock_all()
            win.get(buf, 1, 0)
            mid = [e.state for e in win.index.entries()]
            win.flush(1)
            after = [e.state for e in win.index.entries()]
            win.unlock_all()
            return mid, after

        results, _ = run(2, program)
        mid, after = results[0]
        assert mid == [EntryState.PENDING]
        assert after == [EntryState.CACHED]

    def test_cost_model_total_accumulates(self):
        def program(m):
            win = clampi.window_allocate(
                m.comm_world, 4 * KiB, mode=clampi.Mode.ALWAYS_CACHE
            )
            m.comm_world.barrier()
            if m.rank != 0:
                return None
            buf = np.empty(1024, np.uint8)
            win.lock_all()
            win.get_blocking(buf, 1, 0)
            after_miss = win.cost.total
            win.get_blocking(buf, 1, 0)
            after_hit = win.cost.total
            win.unlock_all()
            return after_miss, after_hit

        results, _ = run(2, program)
        after_miss, after_hit = results[0]
        assert 0 < after_miss < after_hit

    def test_raw_window_shared_buffer(self):
        def program(m):
            win = clampi.window_allocate(m.comm_world, 64)
            win.local_view(np.uint8)[:] = 9
            return int(win.raw.local_buffer[0]), win.raw.comm.rank == m.rank

        results, _ = run(2, program)
        assert results == [(9, True), (9, True)]
