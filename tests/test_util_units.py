"""Unit tests for repro.util.units."""

import pytest

from repro.util import CACHE_LINE, GiB, KiB, MiB, align_up, format_bytes, format_time


class TestAlignUp:
    def test_zero(self):
        assert align_up(0) == 0

    def test_exact_multiple(self):
        assert align_up(CACHE_LINE) == CACHE_LINE
        assert align_up(4 * CACHE_LINE) == 4 * CACHE_LINE

    def test_rounds_up(self):
        assert align_up(1) == CACHE_LINE
        assert align_up(CACHE_LINE + 1) == 2 * CACHE_LINE

    def test_custom_alignment(self):
        assert align_up(10, 8) == 16
        assert align_up(16, 8) == 16
        assert align_up(17, 16) == 32

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            align_up(-1)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(10, 0)

    def test_alignment_one_is_identity(self):
        for n in (0, 1, 7, 63, 64, 100):
            assert align_up(n, 1) == n


class TestUnits:
    def test_constants(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(4 * KiB) == "4.0 KiB"
        assert format_bytes(int(1.5 * MiB)) == "1.5 MiB"
        assert format_bytes(2 * GiB) == "2.0 GiB"

    def test_format_time(self):
        assert format_time(5e-9) == "5.0 ns"
        assert format_time(2.5e-6) == "2.50 us"
        assert format_time(3.2e-3) == "3.20 ms"
        assert format_time(1.5) == "1.500 s"

    def test_format_time_negative(self):
        assert format_time(-2.5e-6) == "-2.50 us"
