"""Crash-stop semantics of the deterministic scheduler.

A ``SimWorld`` built with ``crashes={rank: t}`` kills the victim when its
virtual clock reaches ``t``: the thread unwinds, any blocked collective
releases the survivors with ``RankRevokedError``, and the run completes
with the survivors' results.  These tests pin the detector's contract:
exactly-once revocation observation, *causal* (clock-based, dispatch-order
independent) ``failed_ranks``, and bit-identity when no crash can fire.
"""

import pytest

from repro import recovery
from repro.runtime import RankRevokedError, SimWorld


class TestCrashValidation:
    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            SimWorld(nprocs=2, crashes={5: 1e-6})

    def test_negative_time(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            SimWorld(nprocs=2, crashes={0: -1.0})

    def test_can_fail_flag(self):
        assert not SimWorld(nprocs=2).can_fail
        assert not SimWorld(nprocs=2, crashes={}).can_fail
        assert SimWorld(nprocs=2, crashes={1: 1.0}).can_fail


class TestCrashStop:
    def test_victim_unwinds_survivors_complete(self):
        def program(proc):
            for _ in range(10):
                proc.advance(1e-6)
                recovery.retrying(proc.sync)
            return proc.rank

        world = SimWorld(nprocs=4, crashes={2: 3.5e-6})
        results = world.run(program)
        assert results == [0, 1, None, 3]
        assert world.crashed == {2}

    def test_blocked_sync_releases_survivors(self):
        """The victim dies *inside* a barrier the others already joined."""

        def program(proc):
            if proc.rank == 1:
                proc.advance(5e-6)  # dies here (crash at 2e-6)
            recovery.retrying(proc.sync)
            return "done"

        world = SimWorld(nprocs=3, crashes={1: 2e-6})
        results = world.run(program)
        assert results == ["done", None, "done"]

    def test_exactly_one_revocation_per_survivor(self):
        observed = {0: 0, 2: 0}

        def program(proc):
            proc.advance(1e-6)
            for _ in range(5):
                while True:
                    try:
                        proc.sync()
                        break
                    except RankRevokedError:  # analysis: allow(ANL008)
                        observed[proc.rank] += 1
                proc.advance(1e-6)
            return True

        world = SimWorld(nprocs=3, crashes={1: 2.5e-6})
        results = world.run(program)
        assert results == [True, None, True]
        assert observed == {0: 1, 2: 1}

    def test_failed_ranks_is_causal_in_virtual_time(self):
        """Observation depends on the observer's clock, not dispatch order.

        Rank 0 runs its whole slice before the victim's thread ever
        executes (smallest ``(clock, rank)`` dispatch), yet must already
        observe the crash once its *own* clock passes the death time.
        """
        seen = {}

        def program(proc):
            if proc.rank == 1:
                proc.advance(1.0)  # dies at t=0.5 on the way
                return None
            before = frozenset(proc.failed_ranks)
            proc.advance(0.4)  # clock 0.4 < 0.5: causally unobservable
            mid = frozenset(proc.failed_ranks)
            proc.advance(0.2)  # clock 0.6 >= 0.5: observable
            after = frozenset(proc.failed_ranks)
            seen[proc.rank] = (before, mid, after)
            return True

        world = SimWorld(nprocs=2, crashes={1: 0.5})
        world.run(program)
        assert seen[0] == (frozenset(), frozenset(), frozenset({1}))

    def test_no_crash_plan_failed_ranks_empty(self):
        def program(proc):
            assert proc.failed_ranks == frozenset()
            proc.sync()

        SimWorld(nprocs=2).run(program)

    def test_armed_but_unfired_plan_is_bit_identical(self):
        """A crash scheduled after the run ends must change nothing."""

        def program(proc):
            total = 0.0
            for i in range(8):
                proc.advance((proc.rank + 1) * 1e-6)
                proc.sync(extra_time=1e-7)
                total = proc.clock
            return total

        clean = SimWorld(nprocs=4)
        clean_results = clean.run(program)
        armed = SimWorld(nprocs=4, crashes={1: 1.0})  # far past the end
        armed_results = armed.run(program)
        assert armed_results == clean_results
        assert armed.clocks == clean.clocks
        assert armed.crashed == set()


class TestRevocationErrorShape:
    def test_error_names_crashed_ranks(self):
        def program(proc):
            if proc.rank == 1:
                proc.advance(1.0)
                return None
            proc.advance(0.9)
            try:
                proc.sync()
            except RankRevokedError as e:  # analysis: allow(ANL008)
                return e.crashed
            return None

        world = SimWorld(nprocs=2, crashes={1: 0.5})
        results = world.run(program)
        assert results[0] == frozenset({1})
