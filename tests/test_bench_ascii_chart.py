"""Unit tests for the terminal chart renderer."""

import pytest

from repro.bench.ascii_chart import bar_chart, line_chart, sparkline
from repro.bench.reporting import FigureResult


class TestLineChart:
    def test_basic_dimensions(self):
        out = line_chart({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert len(plot_lines) == 5

    def test_markers_placed_at_extremes(self):
        out = line_chart({"s": [(0, 0), (10, 10)]}, width=20, height=5)
        lines = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        assert lines[0].rstrip().endswith("*")   # max y at right
        assert lines[-1].lstrip().startswith("*")  # min y at left

    def test_multiple_series_distinct_markers(self):
        out = line_chart({"a": [(0, 0)], "b": [(1, 1)]})
        assert "* a" in out and "+ b" in out

    def test_title_and_labels(self):
        out = line_chart(
            {"s": [(1, 2)]}, title="T", xlabel="size", ylabel="lat", logx=True
        )
        assert out.startswith("T")
        assert "x: size (log)" in out
        assert "y: lat" in out

    def test_empty(self):
        assert line_chart({}) == "(no data)"
        assert line_chart({"s": []}) == "(no data)"

    def test_log_x_spreads_decades(self):
        # with log-x, 1..10..100 should land at roughly even columns
        out = line_chart(
            {"s": [(1, 1), (10, 1), (100, 1)]}, width=21, height=3, logx=True
        )
        row = next(l for l in out.splitlines() if "*" in l).split("|", 1)[1]
        cols = [i for i, ch in enumerate(row) if ch == "*"]
        assert len(cols) == 3
        gaps = [cols[1] - cols[0], cols[2] - cols[1]]
        assert abs(gaps[0] - gaps[1]) <= 1

    def test_constant_series_no_crash(self):
        out = line_chart({"s": [(1, 5), (2, 5), (3, 5)]})
        assert "*" in out

    def test_log_y_spreads_decades(self):
        out = line_chart(
            {"s": [(0, 1), (1, 10), (2, 100)]}, width=5, height=21, logy=True
        )
        rows = [
            i
            for i, l in enumerate(out.splitlines())
            if "|" in l and "*" in l.split("|", 1)[1]
        ]
        assert len(rows) == 3
        gaps = [rows[1] - rows[0], rows[2] - rows[1]]
        assert abs(gaps[0] - gaps[1]) <= 1

    def test_log_y_label(self):
        out = line_chart({"s": [(1, 2)]}, ylabel="t", logy=True)
        assert "y: t (log)" in out


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") * 2 == lines[1].count("█")

    def test_zero_value(self):
        out = bar_chart(["z"], [0.0])
        assert "█" not in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="hello").startswith("hello")


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramps(self):
        s = sparkline([0, 1, 2, 3, 4, 5])
        assert s[0] < s[-1]

    def test_flat(self):
        s = sparkline([3, 3, 3])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestFigureChart:
    def test_numeric_x_line_chart(self):
        fig = FigureResult("F", "t", ["x", "a", "b"])
        fig.rows = [[1, 10, 20], [2, 11, 21], [4, 12, 22]]
        out = fig.chart()
        assert "* a" in out and "+ b" in out

    def test_categorical_bar_charts(self):
        fig = FigureResult("F", "t", ["cfg", "time"])
        fig.rows = [["alpha", 1.0], ["beta", 3.0]]
        out = fig.chart()
        assert "alpha" in out and "█" in out

    def test_mixed_columns_skipped(self):
        fig = FigureResult("F", "t", ["x", "num", "text"])
        fig.rows = [[1, 2.0, "hi"], [2, 3.0, "yo"]]
        out = fig.chart()
        assert "num" in out and "text" not in out.replace("F: t", "")

    def test_nothing_numeric(self):
        fig = FigureResult("F", "t", ["a", "b"])
        fig.rows = [["x", "y"]]
        assert "nothing numeric" in fig.chart()

    def test_empty_rows(self):
        assert FigureResult("F", "t", ["a"]).chart() == "(no data)"
