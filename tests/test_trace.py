"""Unit tests for trace recording and locality analyses."""

import numpy as np
import pytest

from repro.trace import (
    GetRecord,
    TraceRecorder,
    TracingWindow,
    reuse_histogram,
    size_distribution,
    working_set_sizes,
)
from repro.trace.analysis import reuse_fraction, working_set_bytes


def R(trg, dsp, size=8):
    return GetRecord(trg, dsp, size)


class TestRecorder:
    def test_record_and_query(self):
        rec = TraceRecorder()
        rec.record(1, 0, 100)
        rec.record(2, 64, 200)
        assert len(rec) == 2
        assert rec.sizes().tolist() == [100, 200]
        assert rec.keys() == [(1, 0), (2, 64)]

    def test_tracing_window_wraps_gets(self):
        from repro.mpi import SimMPI, Window

        def program(m):
            win = Window.allocate(m.comm_world, 256)
            rec = TraceRecorder()
            tw = TracingWindow(win, rec)
            tw.lock_all()
            buf = np.empty(32, np.uint8)
            tw.get(buf, 0, 0)
            tw.flush(0)
            tw.get_blocking(buf, 0, 64)
            tw.unlock_all()
            return rec.keys(), rec.sizes().tolist(), tw.eph

        results = SimMPI(nprocs=1).run(program)
        keys, sizes, eph = results[0]
        assert keys == [(0, 0), (0, 64)]
        assert sizes == [32, 32]
        assert eph == 3  # attribute proxying works


class TestReuseHistogram:
    def test_basic(self):
        records = [R(0, 0), R(0, 0), R(0, 0), R(1, 0), R(1, 8)]
        assert reuse_histogram(records) == {1: 2, 3: 1}

    def test_empty(self):
        assert reuse_histogram([]) == {}

    def test_reuse_fraction(self):
        records = [R(0, 0), R(0, 0), R(0, 0), R(1, 0)]
        assert reuse_fraction(records) == pytest.approx(0.5)
        assert reuse_fraction([]) == 0.0

    def test_distinct_only(self):
        records = [R(0, i) for i in range(10)]
        assert reuse_histogram(records) == {1: 10}
        assert reuse_fraction(records) == 0.0


class TestSizeDistribution:
    def test_counts_sum(self):
        records = [R(0, i, s) for i, s in enumerate([10, 100, 1000, 10000])]
        _edges, counts = size_distribution(records)
        assert counts.sum() == 4

    def test_custom_bins(self):
        records = [R(0, 0, 5), R(0, 1, 15), R(0, 2, 25)]
        edges, counts = size_distribution(records, bin_edges=[0, 10, 20, 30])
        assert counts.tolist() == [1, 1, 1]


class TestWorkingSet:
    def test_distinct_window(self):
        records = [R(0, i % 3) for i in range(30)]
        ws = working_set_sizes(records, tau=10)
        assert ws[-1] == 3  # only 3 distinct gets in any window

    def test_window_smaller_than_distinct(self):
        records = [R(0, i) for i in range(20)]
        ws = working_set_sizes(records, tau=5)
        assert ws[-1] == 5

    def test_bytes_footprint(self):
        records = [R(0, 0, 100), R(0, 1, 200), R(0, 0, 100)]
        wb = working_set_bytes(records, tau=10)
        assert wb.tolist() == [100, 300, 300]

    def test_bytes_keeps_largest_size_per_key(self):
        records = [R(0, 0, 100), R(0, 0, 400)]
        wb = working_set_bytes(records, tau=10)
        assert wb[-1] == 400

    def test_expiry(self):
        records = [R(0, 0, 64)] + [R(0, i + 1, 8) for i in range(10)]
        wb = working_set_bytes(records, tau=3)
        assert wb[-1] == 3 * 8  # the 64-byte get left the window long ago

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            working_set_sizes([], 0)
        with pytest.raises(ValueError):
            working_set_bytes([], -1)
