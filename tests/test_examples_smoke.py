"""Smoke tests: the example scripts must run end-to-end.

Each example asserts its own correctness internally (forces vs brute force,
LCC vs the sequential reference, ...), so a clean exit is meaningful.
Only the quick ones run here; the heavier examples are exercised by the
application integration tests through the same code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "speedup of a hit over the miss" in out

    def test_adaptive_tuning(self):
        out = run_example("adaptive_tuning.py")
        assert "adaptive (same start)" in out

    def test_locality_analysis(self):
        out = run_example("locality_analysis.py")
        assert "reuse fraction" in out
        assert "working-set profile" in out

    def test_lcc_graph_small(self):
        out = run_example("lcc_graph.py", "8", "4")
        assert "identical LCC values" in out

    def test_multisource_bfs_small(self):
        out = run_example("multisource_bfs.py", "8", "4")
        assert "marginal cost per source" in out

    def test_barnes_hut_small(self):
        out = run_example("barnes_hut_sim.py", "300", "4")
        assert "identical forces" in out
