"""Unit tests for the adaptive parameter controller (Sec. III-E1)."""

import pytest

from repro.core.adaptive import AdaptiveController
from repro.core.config import AdaptiveParams
from repro.core.stats import AccessType, CacheStats
from repro.util import KiB, MiB


def make_stats(
    gets=1000,
    conflicting=0,
    capacity=0,
    failing=0,
    hits=0,
    eviction_visited=0,
    eviction_nonempty=0,
):
    stats = CacheStats()
    itv = stats.interval
    itv.gets = gets
    itv.conflicting = conflicting
    itv.capacity = capacity
    itv.failing = failing
    itv.hit_full = hits
    itv.eviction_visited = eviction_visited
    itv.eviction_nonempty = eviction_nonempty
    return stats


PARAMS = AdaptiveParams(
    check_interval=100,
    conflict_threshold=0.05,
    capacity_threshold=0.10,
    stable_threshold=0.60,
    free_space_threshold=0.75,
    sparsity_threshold=0.25,
    min_storage_bytes=64 * KiB,
)


class TestIndexRules:
    def test_conflicts_grow_index(self):
        c = AdaptiveController(PARAMS)
        adj = c.evaluate(make_stats(conflicting=100), 1024, 1 * MiB, 0)
        assert adj is not None
        assert adj.index_entries == 2048
        assert "grow index" in adj.reason

    def test_conflicts_below_threshold_no_change(self):
        c = AdaptiveController(PARAMS)
        adj = c.evaluate(make_stats(conflicting=10), 1024, 1 * MiB, 0)
        assert adj is None

    def test_sparsity_shrinks_index(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(eviction_visited=1000, eviction_nonempty=100)
        adj = c.evaluate(stats, 4096, 1 * MiB, 0)
        assert adj is not None
        assert adj.index_entries == 2048
        assert "shrink index" in adj.reason

    def test_dense_evictions_no_shrink(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(eviction_visited=1000, eviction_nonempty=900)
        assert c.evaluate(stats, 4096, 1 * MiB, 0) is None

    def test_index_min_bound(self):
        params = AdaptiveParams(min_index_entries=64)
        c = AdaptiveController(params)
        stats = make_stats(eviction_visited=1000, eviction_nonempty=0)
        adj = c.evaluate(stats, 64, 1 * MiB, 0)
        assert adj is None  # already at the floor

    def test_index_max_bound(self):
        params = AdaptiveParams(max_index_entries=1024)
        c = AdaptiveController(params)
        adj = c.evaluate(make_stats(conflicting=500), 1024, 1 * MiB, 0)
        assert adj is None  # already at the ceiling


class TestStorageRules:
    def test_capacity_grows_storage(self):
        c = AdaptiveController(PARAMS)
        adj = c.evaluate(make_stats(capacity=80, failing=80), 1024, 1 * MiB, 0)
        assert adj is not None
        assert adj.storage_bytes == 2 * MiB

    def test_failing_alone_grows_storage(self):
        c = AdaptiveController(PARAMS)
        adj = c.evaluate(make_stats(failing=200), 1024, 1 * MiB, 0)
        assert adj is not None
        assert adj.storage_bytes == 2 * MiB

    def test_stable_and_free_shrinks_storage(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(hits=800)
        adj = c.evaluate(stats, 1024, 2 * MiB, free_bytes=int(1.8 * MiB))
        assert adj is not None
        assert adj.storage_bytes == 1 * MiB
        assert "shrink storage" in adj.reason

    def test_stable_but_tight_no_shrink(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(hits=800)
        assert c.evaluate(stats, 1024, 2 * MiB, free_bytes=512 * KiB) is None

    def test_free_but_unstable_no_shrink(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(hits=100)  # 10% hits: not stable
        assert c.evaluate(stats, 1024, 2 * MiB, free_bytes=int(1.9 * MiB)) is None

    def test_storage_min_bound(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(hits=900)
        adj = c.evaluate(stats, 1024, 64 * KiB, free_bytes=60 * KiB)
        assert adj is None


class TestCombined:
    def test_both_dimensions_in_one_decision(self):
        c = AdaptiveController(PARAMS)
        stats = make_stats(conflicting=100, capacity=200)
        adj = c.evaluate(stats, 512, 1 * MiB, 0)
        assert adj is not None
        assert adj.index_entries == 1024
        assert adj.storage_bytes == 2 * MiB
        assert "grow index" in adj.reason and "grow storage" in adj.reason

    def test_growth_preferred_over_shrink_on_conflict_signal(self):
        """Capacity pressure wins over the shrink rule."""
        c = AdaptiveController(PARAMS)
        stats = make_stats(capacity=200, hits=700)
        adj = c.evaluate(stats, 1024, 1 * MiB, free_bytes=900 * KiB)
        assert adj is not None
        assert adj.storage_bytes == 2 * MiB

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AdaptiveParams(check_interval=0)
        with pytest.raises(ValueError):
            AdaptiveParams(index_increase_factor=1.0)
