"""Unit tests for entry scores, the state machine and stats accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import full_score, positional_score, temporal_score
from repro.core.states import EntryState, IllegalTransition, check_transition
from repro.core.stats import AccessType, CacheStats, Counters


class TestPositionalScore:
    def test_perfect_fit_scores_zero(self):
        """d_c == ags: evicting frees exactly a usable hole -> best victim."""
        assert positional_score(1024.0, 1024) == 0.0

    def test_no_adjacent_free_scores_high(self):
        assert positional_score(1024.0, 0) == 1.0

    def test_clamped_to_one(self):
        assert positional_score(100.0, 100000) == 1.0

    def test_between(self):
        assert positional_score(1000.0, 500) == pytest.approx(0.5)

    def test_zero_ags_neutral(self):
        assert positional_score(0.0, 512) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            positional_score(-1.0, 0)
        with pytest.raises(ValueError):
            positional_score(1.0, -1)


class TestTemporalScore:
    def test_recently_matched_scores_high(self):
        assert temporal_score(100, 100) == 1.0

    def test_stale_scores_low(self):
        assert temporal_score(1, 1000) == pytest.approx(0.001)

    def test_lru_ordering(self):
        i = 500
        assert temporal_score(499, i) > temporal_score(100, i) > temporal_score(3, i)

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            temporal_score(1, 0)


class TestFullScore:
    def test_product_in_unit_interval(self):
        s = full_score(1000.0, 300, 40, 100)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(positional_score(1000.0, 300) * 0.4)

    @settings(max_examples=100, deadline=None)
    @given(
        ags=st.floats(0.0, 1e6, allow_nan=False),
        d_c=st.integers(0, 1 << 20),
        last=st.integers(0, 1000),
        i=st.integers(1, 1000),
    )
    def test_property_bounded(self, ags, d_c, last, i):
        assert 0.0 <= full_score(ags, d_c, last, i) <= 1.0


class TestStateMachine:
    def test_legal_lifecycle(self):
        check_transition(EntryState.MISSING, EntryState.PENDING)
        check_transition(EntryState.PENDING, EntryState.CACHED)
        check_transition(EntryState.CACHED, EntryState.MISSING)

    def test_invalidation_of_pending(self):
        check_transition(EntryState.PENDING, EntryState.MISSING)

    def test_partial_hit_refetch(self):
        check_transition(EntryState.CACHED, EntryState.PENDING)

    def test_self_transition_allowed(self):
        check_transition(EntryState.CACHED, EntryState.CACHED)

    def test_illegal_transitions_rejected(self):
        with pytest.raises(IllegalTransition):
            check_transition(EntryState.MISSING, EntryState.CACHED)

    def test_all_nonlisted_pairs_rejected(self):
        legal = {
            (EntryState.MISSING, EntryState.PENDING),
            (EntryState.PENDING, EntryState.CACHED),
            (EntryState.CACHED, EntryState.MISSING),
            (EntryState.PENDING, EntryState.MISSING),
            (EntryState.CACHED, EntryState.PENDING),
        }
        for old in EntryState:
            for new in EntryState:
                if old == new or (old, new) in legal:
                    check_transition(old, new)
                else:
                    with pytest.raises(IllegalTransition):
                        check_transition(old, new)


class TestStats:
    def test_access_recording(self):
        s = CacheStats()
        s.record_access(AccessType.HIT_FULL)
        s.record_access(AccessType.DIRECT)
        s.record_access(AccessType.FAILING)
        assert s.total.gets == 3
        assert s.total.hits == 1
        assert s.total.misses == 2
        assert s.total.hit_ratio == pytest.approx(1 / 3)

    def test_interval_resets_independently(self):
        s = CacheStats()
        s.record_access(AccessType.DIRECT)
        s.reset_interval()
        s.record_access(AccessType.HIT_FULL)
        assert s.total.gets == 2
        assert s.interval.gets == 1
        assert s.interval.hit_ratio == 1.0

    def test_eviction_recording(self):
        s = CacheStats()
        s.record_eviction(20, 5, conflict=False)
        s.record_eviction(0, 0, conflict=True)
        assert s.total.evictions == 2
        assert s.total.capacity_evictions == 1
        assert s.total.conflict_evictions == 1
        assert s.total.eviction_visited == 20
        assert s.total.eviction_nonempty == 5

    def test_breakdown_sums_to_one_when_all_classified(self):
        s = CacheStats()
        for a in AccessType:
            s.record_access(a)
        assert sum(s.breakdown().values()) == pytest.approx(1.0)

    def test_ratios_zero_on_empty(self):
        c = Counters()
        assert c.hit_ratio == 0.0
        assert c.conflict_ratio == 0.0

    def test_snapshot_is_plain_dict(self):
        s = CacheStats()
        s.record_access(AccessType.CAPACITY)
        snap = s.snapshot()
        assert snap["capacity"] == 1
        assert isinstance(snap, dict)
