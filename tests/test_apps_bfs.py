"""Integration tests for the multi-source BFS extension application."""

import numpy as np
import pytest

from repro.apps.bfs import BFSApp
from repro.apps.cachespec import CacheSpec
from repro.util import KiB, MiB


@pytest.fixture(scope="module")
def app():
    return BFSApp(scale=7, edge_factor=8, seed=3)


class TestCorrectness:
    def test_single_source_matches_reference(self, app):
        run = app.run(3, [0], CacheSpec.fompi())
        assert np.array_equal(run.distances[0], app.reference_bfs(0))

    def test_multi_source(self, app):
        sources = [0, 7, 42, 99]
        run = app.run(4, sources, CacheSpec.clampi_fixed(2048, 2 * MiB))
        for i, s in enumerate(sources):
            assert np.array_equal(run.distances[i], app.reference_bfs(s)), s

    def test_cached_equals_uncached(self, app):
        sources = [3, 11]
        a = app.run(3, sources, CacheSpec.fompi())
        b = app.run(3, sources, CacheSpec.clampi_fixed(128, 64 * KiB))
        assert np.array_equal(a.distances, b.distances)

    def test_isolated_source(self):
        # a graph where some vertex has no edges
        app = BFSApp(scale=6, edge_factor=2, seed=1)
        degrees = app.csr.degrees()
        isolated = int(np.argmin(degrees))
        if degrees[isolated] == 0:
            run = app.run(2, [isolated], CacheSpec.fompi())
            d = run.distances[0]
            assert d[isolated] == 0
            assert np.sum(d >= 0) == 1

    def test_invalid_source_rejected(self, app):
        with pytest.raises(ValueError):
            app.run(2, [app.nvertices])

    def test_single_rank(self, app):
        run = app.run(1, [0], CacheSpec.clampi_fixed(256, 256 * KiB))
        assert np.array_equal(run.distances[0], app.reference_bfs(0))


class TestReuseAcrossSources:
    def test_later_sources_hit_the_cache(self, app):
        sources = [0, 1, 2, 3, 4, 5]
        run = app.run(4, sources, CacheSpec.clampi_fixed(4096, 4 * MiB))
        st = run.merged_stats()
        hits = st["hit_full"] + st["hit_pending"] + st["hit_partial"]
        assert hits > 0.3 * st["gets"]

    def test_caching_speeds_up_multi_source(self, app):
        sources = list(range(6))
        f = app.run(4, sources, CacheSpec.fompi())
        c = app.run(4, sources, CacheSpec.clampi_fixed(4096, 4 * MiB))
        assert c.elapsed < f.elapsed

    def test_single_source_little_reuse(self, app):
        """One BFS touches each adjacency ~once: hit ratio should be low."""
        run = app.run(4, [0], CacheSpec.clampi_fixed(4096, 4 * MiB))
        st = run.merged_stats()
        hits = st["hit_full"] + st["hit_pending"] + st["hit_partial"]
        multi = app.run(4, list(range(6)), CacheSpec.clampi_fixed(4096, 4 * MiB))
        mst = multi.merged_stats()
        mhits = mst["hit_full"] + mst["hit_pending"] + mst["hit_partial"]
        assert mhits / max(mst["gets"], 1) > hits / max(st["gets"], 1)
