"""Unit tests for the LibLSB-style statistics helpers."""

import random

import pytest

from repro.util import (
    RunStats,
    confidence_interval_median,
    median,
    repeat_until_confident,
)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_averages_middle(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single(self):
        assert median([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_unsorted_input(self):
        assert median([9, 1, 5, 3, 7]) == 5


class TestConfidenceInterval:
    def test_requires_three_samples(self):
        with pytest.raises(ValueError):
            confidence_interval_median([1.0, 2.0])

    def test_brackets_median(self):
        rnd = random.Random(42)
        samples = [rnd.gauss(10.0, 1.0) for _ in range(101)]
        lo, hi = confidence_interval_median(samples)
        assert lo <= median(samples) <= hi

    def test_narrows_with_more_samples(self):
        rnd = random.Random(7)
        small = [rnd.gauss(5.0, 1.0) for _ in range(20)]
        big = small + [rnd.gauss(5.0, 1.0) for _ in range(480)]
        lo_s, hi_s = confidence_interval_median(small)
        lo_b, hi_b = confidence_interval_median(big)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_constant_samples_collapse(self):
        lo, hi = confidence_interval_median([3.0] * 30)
        assert lo == hi == 3.0


class TestRunStats:
    def test_ci_within_on_tight_data(self):
        stats = RunStats()
        for _ in range(20):
            stats.add(1.0)
        assert stats.ci_within(0.05)

    def test_ci_not_within_on_noisy_few(self):
        stats = RunStats()
        stats.add(1.0)
        stats.add(100.0)
        assert not stats.ci_within(0.05)

    def test_mean(self):
        stats = RunStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert stats.mean == pytest.approx(2.0)

    def test_summary_mentions_median(self):
        stats = RunStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert "median=2" in stats.summary()


class TestRepeatUntilConfident:
    def test_deterministic_measure_stops_at_min(self):
        calls = []

        def measure():
            calls.append(1)
            return 5.0

        stats = repeat_until_confident(measure, min_repetitions=5)
        assert stats.n == 5
        assert stats.median == 5.0

    def test_respects_max_repetitions(self):
        rnd = random.Random(3)
        stats = repeat_until_confident(
            lambda: rnd.uniform(0, 1000), rel_tol=1e-9, max_repetitions=25
        )
        assert stats.n == 25

    def test_rejects_tiny_min(self):
        with pytest.raises(ValueError):
            repeat_until_confident(lambda: 1.0, min_repetitions=2)
