#!/usr/bin/env python3
"""Barnes-Hut N-body force computation under four cache configurations.

Reproduces the paper's Sec. IV-B experiment at laptop scale: the octree is
distributed over the ranks' RMA windows and the force phase fetches tree
nodes with one-sided gets.  CLaMPI runs in *user-defined* mode (read-only
force phase, invalidate afterwards — paper Listing 1).

The script verifies that all variants compute identical forces, and that
those forces match a direct O(N^2) summation.

Run with:  python examples/barnes_hut_sim.py [nbodies] [nprocs]
"""

import sys

import numpy as np

from repro.apps import BarnesHutApp
from repro.apps.cachespec import CacheSpec
from repro.bench.reporting import format_table
from repro.util import KiB, format_bytes, format_time


def main():
    nbodies = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    app = BarnesHutApp(nbodies=nbodies, seed=42, theta=0.5)
    tree_bytes = app.tree.nnodes * 128
    print(
        f"N={nbodies} bodies on P={nprocs} ranks; "
        f"octree: {app.tree.nnodes} nodes ({format_bytes(tree_bytes)})\n"
    )

    specs = [
        CacheSpec.fompi(),
        CacheSpec.native(memory_bytes=max(tree_bytes // 2, 64 * KiB), block_size=128),
        CacheSpec.clampi_fixed(8192, tree_bytes),
        CacheSpec.clampi_adaptive(1024, tree_bytes // 4),
    ]
    rows = []
    runs = []
    for spec in specs:
        run = app.run(nprocs, spec)
        runs.append(run)
        st = run.merged_stats()
        if "block_hits" in st:  # native block cache counts per block
            hits = st["block_hits"]
            gets = st["block_hits"] + st["block_misses"]
        else:
            hits = st.get("hit_full", 0) + st.get("hit_pending", 0) + st.get("hit_partial", 0)
            gets = st.get("gets", 0)
        rows.append(
            [
                run.label,
                format_time(run.time_per_body),
                f"{hits / gets:.1%}" if gets else "-",
                int(run.max_stat("adjustments")) if run.cache_stats else 0,
            ]
        )
    print(format_table(["configuration", "time/body", "hit ratio", "adjustments"], rows))

    # All variants must agree bit-for-bit (the cache is transparent) ...
    for run in runs[1:]:
        assert np.allclose(run.forces, runs[0].forces, rtol=0, atol=0), run.label
    # ... and match the brute-force ground truth within the theta error.
    ref = app.reference_forces()
    rel_err = np.abs(runs[0].forces - ref).max() / np.abs(ref).max()
    print(f"\nall configurations computed identical forces")
    print(f"max relative error vs O(N^2) reference: {rel_err:.2e} (theta={app.theta})")
    base = runs[0].time_per_body
    best = min(r.time_per_body for r in runs[2:])
    print(f"CLaMPI speedup over the uncached run: {base / best:.1f}x")


if __name__ == "__main__":
    main()
