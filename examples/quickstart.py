#!/usr/bin/env python3
"""Quickstart: transparent caching of RMA gets with CLaMPI.

Runs a 4-rank simulated MPI job.  Every rank exposes a window, fills it
with rank-specific data, and repeatedly gets a block from its neighbour.
The first access misses (remote fetch); the rest are served from the local
cache — watch the latency drop by ~an order of magnitude.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import clampi
from repro.mpi import SimMPI
from repro.util import KiB, format_time


def program(mpi):
    # Collectively allocate a caching-enabled window (always-cache mode:
    # we promise the window content never changes).
    win = clampi.window_allocate(
        mpi.comm_world,
        64 * KiB,
        mode=clampi.Mode.ALWAYS_CACHE,
        config=clampi.Config(index_entries=1024, storage_bytes=256 * KiB),
    )
    win.local_view(np.float64)[:] = mpi.rank * 1000 + np.arange(8 * KiB)
    mpi.comm_world.barrier()

    peer = (mpi.rank + 1) % mpi.size
    buf = np.empty(512, np.float64)  # 4 KiB payload

    # Scoped epoch: lock_all on entry, unlock_all (completing everything)
    # on exit — no way to leak an open epoch past the block.
    timings = []
    with win.lock_all_epoch():
        for i in range(5):
            t0 = mpi.time
            win.get(buf, peer, 0)   # one-sided read from the peer's window
            win.flush(peer)         # completes the get (closes the epoch)
            timings.append(mpi.time - t0)

    assert np.array_equal(buf, peer * 1000 + np.arange(512))
    return timings, win.stats.snapshot()


def main():
    mpi = SimMPI(nprocs=4)
    results = mpi.run(program)

    timings, stats = results[0]
    print("get latency, rank 0 -> rank 1 (4 KiB):")
    for i, t in enumerate(timings):
        kind = "miss (remote fetch)" if i == 0 else "hit  (local cache)"
        print(f"  access {i}: {format_time(t):>10}   {kind}")
    print(f"\nspeedup of a hit over the miss: {timings[0] / timings[1]:.1f}x")
    print(
        f"cache stats: {stats['gets']} gets, {stats['hit_full']} hits, "
        f"{stats['direct']} misses, "
        f"{stats['bytes_from_network']} B over the network, "
        f"{stats['bytes_from_cache']} B from cache"
    )


if __name__ == "__main__":
    main()
