#!/usr/bin/env python3
"""Multi-source BFS: cache reuse *across* traversals.

A single BFS touches each adjacency list roughly once, so there is little
to cache.  Run BFS from many sources over the same (immutable) graph,
though, and every traversal after the first re-fetches the same remote
adjacency lists — an always-cache CLaMPI window turns those into local
hits.  This example measures the per-source marginal cost as the number of
sources grows.

Run with:  python examples/multisource_bfs.py [scale] [nprocs]
"""

import sys

import numpy as np

from repro.apps.bfs import BFSApp
from repro.apps.cachespec import CacheSpec
from repro.bench.reporting import format_table
from repro.util import format_time


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    app = BFSApp(scale=scale, edge_factor=8, seed=7)
    footprint = app.csr.nedges * 8
    print(
        f"R-MAT 2^{scale} = {app.nvertices} vertices, {app.csr.nedges} edges, "
        f"P={nprocs}\n"
    )

    # Sample sources among well-connected vertices so every traversal
    # actually covers the giant component.
    candidates = np.argsort(app.csr.degrees())[-64:]
    rng = np.random.default_rng(0)
    rows = []
    for nsources in (1, 2, 4, 8):
        sources = rng.choice(candidates, size=nsources, replace=False).tolist()
        f = app.run(nprocs, sources, CacheSpec.fompi())
        c = app.run(nprocs, sources, CacheSpec.clampi_fixed(4 * app.nvertices, footprint))
        st = c.merged_stats()
        hits = st["hit_full"] + st["hit_pending"] + st["hit_partial"]
        rows.append(
            [
                nsources,
                format_time(f.elapsed / nsources),
                format_time(c.elapsed / nsources),
                f"{f.elapsed / c.elapsed:.2f}x",
                f"{hits / max(st['gets'], 1):.1%}",
            ]
        )
        # all variants agree with the sequential reference
        for i, s in enumerate(sources):
            assert np.array_equal(c.distances[i], app.reference_bfs(s))
    print(
        format_table(
            ["sources", "foMPI / source", "CLaMPI / source", "speedup", "hit ratio"],
            rows,
        )
    )
    print(
        "\nThe marginal cost per source drops as the cache warms: later"
        "\ntraversals are served from local memory (distances verified"
        "\nagainst a sequential reference)."
    )


if __name__ == "__main__":
    main()
