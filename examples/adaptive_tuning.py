#!/usr/bin/env python3
"""Watching the adaptive controller resize |I_w| and |S_w| at runtime.

Starts a cache with deliberately bad parameters (tiny index, tiny storage)
and runs the paper's micro-benchmark workload through it.  The controller
(Sec. III-E1) observes conflicting and capacity/failed access ratios per
interval and grows the structures — every adjustment invalidates the cache,
which is why the paper annotates adjustment counts on its plots.

Run with:  python examples/adaptive_tuning.py
"""

from repro import clampi
from repro.apps.cachespec import CacheSpec
from repro.bench import make_micro_workload, run_micro
from repro.bench.reporting import format_table
from repro.util import KiB, format_bytes, format_time


def main():
    wl = make_micro_workload(n_distinct=800, z=12_000, seed=1)
    print(
        f"workload: {wl.n_distinct} distinct gets "
        f"({format_bytes(wl.window_bytes)} of remote data), "
        f"{wl.length} accesses\n"
    )

    start_index, start_storage = 64, 64 * KiB
    rows = []
    for label, spec in [
        (
            "fixed (bad parameters)",
            CacheSpec.clampi_fixed(start_index, start_storage),
        ),
        (
            "adaptive (same start)",
            CacheSpec.clampi_adaptive(
                start_index,
                start_storage,
                adaptive_params=clampi.AdaptiveParams(check_interval=256),
            ),
        ),
        (
            "fixed (oracle parameters)",
            CacheSpec.clampi_fixed(4 * wl.n_distinct, 2 * wl.window_bytes),
        ),
    ]:
        res = run_micro(wl, spec)
        s = res.stats
        hits = s["hit_full"] + s["hit_partial"] + s["hit_pending"]
        rows.append(
            [
                label,
                format_time(res.completion_time),
                f"{hits / s['gets']:.1%}",
                s["conflicting"],
                s["capacity"] + s["failing"],
                s["adjustments"],
                f"{res.final_index_entries} / {format_bytes(res.final_storage_bytes)}",
            ]
        )

    print(
        format_table(
            [
                "strategy",
                "completion",
                "hit ratio",
                "conflicting",
                "capacity+failed",
                "adjustments",
                "final |I_w| / |S_w|",
            ],
            rows,
        )
    )
    print(
        "\nThe adaptive run starts from the same bad parameters as the first"
        "\nrow but converges towards the oracle configuration by itself."
    )


if __name__ == "__main__":
    main()
