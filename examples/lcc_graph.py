#!/usr/bin/env python3
"""Distributed Local Clustering Coefficient over an R-MAT graph.

Reproduces the paper's Sec. IV-C experiment at laptop scale: the graph is
1-D partitioned, every rank exposes its adjacency block through an RMA
window, and computing LCC(v) fetches the adjacency list of each neighbour
of v — repeatedly for scale-free hubs, which is the reuse CLaMPI caches
(*always-cache* mode: the graph is immutable).

Run with:  python examples/lcc_graph.py [scale] [nprocs]
"""

import sys

import numpy as np

from repro.apps import LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.reporting import format_table
from repro.util import format_bytes, format_time


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    app = LCCApp(scale=scale, edge_factor=16, seed=3)
    adj_bytes = app.csr.nedges * 8
    print(
        f"R-MAT: 2^{scale} = {app.nvertices} vertices, {app.csr.nedges} "
        f"directed edges ({format_bytes(adj_bytes)} adjacency), P={nprocs}\n"
    )

    from repro import clampi

    specs = [
        CacheSpec.fompi(),
        CacheSpec.clampi_fixed(4 * app.nvertices, adj_bytes),
        CacheSpec.clampi_adaptive(
            256,
            adj_bytes // 16,
            adaptive_params=clampi.AdaptiveParams(check_interval=256),
        ),
    ]
    rows = []
    runs = []
    for spec in specs:
        run = app.run(nprocs, spec)
        runs.append(run)
        st = run.merged_stats()
        gets = st.get("gets", 0)
        hits = st.get("hit_full", 0) + st.get("hit_pending", 0) + st.get("hit_partial", 0)
        rows.append(
            [
                run.label,
                format_time(run.vertex_time),
                f"{hits / gets:.1%}" if gets else "-",
                format_bytes(st.get("bytes_from_network", 0)) if st else "-",
            ]
        )
    print(
        format_table(
            ["configuration", "time/vertex", "hit ratio", "network bytes"], rows
        )
    )

    # Transparency: cached and uncached runs produce identical coefficients,
    # and they match the sequential single-node reference.
    for run in runs[1:]:
        assert np.array_equal(run.lcc, runs[0].lcc), run.label
    ref = app.reference_lcc()
    assert np.allclose(runs[0].lcc, ref)
    print("\nall configurations computed identical LCC values")
    print(f"verified against the sequential reference (max LCC = {ref.max():.3f})")
    print(
        f"CLaMPI speedup over the uncached run: "
        f"{runs[0].elapsed / min(r.elapsed for r in runs[1:]):.1f}x"
    )


if __name__ == "__main__":
    main()
