#!/usr/bin/env python3
"""Locality analysis of RMA get traces (the paper's Figs. 2 and 3).

Records every one-sided get of a Barnes-Hut and an LCC run, then computes
the two locality measures that motivate RMA caching:

* the reuse histogram — how many times the same (target, displacement)
  is fetched (temporal locality, Fig. 2);
* the size distribution — how variable the payload sizes are, i.e. why a
  fixed block size fragments internally (Fig. 3);

plus the Denning working-set profile used to reason about |I_w|/|S_w|
(Sec. III-E).

Run with:  python examples/locality_analysis.py
"""

import numpy as np

from repro.apps import BarnesHutApp, LCCApp
from repro.apps.cachespec import CacheSpec
from repro.bench.reporting import format_table
from repro.trace import (
    reuse_histogram,
    size_distribution,
    working_set_sizes,
)
from repro.trace.analysis import reuse_fraction, working_set_bytes
from repro.util import format_bytes


def main():
    print("--- Barnes-Hut (N=600 bodies, P=4): temporal locality ---\n")
    bh = BarnesHutApp(nbodies=600, seed=9)
    run = bh.run(4, CacheSpec.fompi(), trace=True)
    records = [r for t in run.traces for r in t.records]
    hist = reuse_histogram(records)
    rows = []
    for lo, hi in [(1, 1), (2, 9), (10, 99), (100, 999), (1000, 10**9)]:
        n = sum(k for rep, k in hist.items() if lo <= rep <= hi)
        if n:
            label = f"{lo}" if lo == hi else f"{lo}-{hi if hi < 10**9 else '...'}"
            rows.append([label, n])
    print(format_table(["times repeated", "distinct gets"], rows))
    print(
        f"\nreuse fraction: {reuse_fraction(records):.1%} of all gets re-fetch"
        f" data already seen; hottest get repeated {max(hist)} times\n"
    )

    print("--- LCC (R-MAT 2^10, P=8): size variability ---\n")
    lcc = LCCApp(scale=10, edge_factor=16, seed=9)
    run = lcc.run(8, CacheSpec.fompi(), trace=True)
    records = [r for t in run.traces for r in t.records]
    edges, counts = size_distribution(records)
    rows = [
        [f"{format_bytes(int(lo))}..{format_bytes(int(hi))}", int(c)]
        for lo, hi, c in zip(edges[:-1], edges[1:], counts)
        if c
    ]
    print(format_table(["get size", "count"], rows))
    sizes = np.array([r.size for r in records])
    print(
        f"\nsizes span {sizes.min()}..{sizes.max()} B "
        f"(median {int(np.median(sizes))} B) -> fixed-size blocks would "
        "fragment internally\n"
    )

    print("--- working-set profile of the LCC trace (one rank) ---\n")
    one_rank = run.traces[0].records
    for tau in (100, 1000, 5000):
        ws = working_set_sizes(one_rank, tau)
        wb = working_set_bytes(one_rank, tau)
        print(
            f"tau={tau:>5}: mean |W(t,tau)| = {ws.mean():8.1f} gets, "
            f"mean footprint = {format_bytes(int(wb.mean()))}"
        )
    print(
        "\n|I_w| bounds the working-set cardinality, |S_w| its footprint "
        "(Sec. III-E constraints)."
    )


if __name__ == "__main__":
    main()
