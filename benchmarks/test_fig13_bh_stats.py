"""Fig. 13: Barnes-Hut access-type statistics (fixed |S_w|)."""

from conftest import run_figure

from repro.bench.figures import fig13_bh_stats


def test_fig13_bh_stats(benchmark, capsys):
    run_figure(benchmark, capsys, fig13_bh_stats, nbodies=1000, nprocs=8)
