"""Fig. 11: victim-selection study over the hash-table size (M=16)."""

from conftest import run_figure

from repro.bench.figures import fig11_victim


def test_fig11_victim(benchmark, capsys):
    run_figure(benchmark, capsys, fig11_victim)
