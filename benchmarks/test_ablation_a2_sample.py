"""Ablation A2: victim sample size M (paper Sec. III-D, M=16)."""

from conftest import run_figure

from repro.bench.ablations import ablation_sample_size


def test_ablation_sample_size(benchmark, capsys):
    run_figure(benchmark, capsys, ablation_sample_size)
