"""Fig. 14: Barnes-Hut weak scaling (paper: 1.5K bodies/PE, P=16..128)."""

from conftest import run_figure

from repro.bench.figures import fig14_bh_weak


def test_fig14_bh_weak(benchmark, capsys):
    run_figure(benchmark, capsys, fig14_bh_weak, bodies_per_pe=150, procs=[2, 4, 8])
