"""Ablation A1: cuckoo hash-function count (paper Sec. III-C1, p=4)."""

from conftest import run_figure

from repro.bench.ablations import ablation_cuckoo_hashes


def test_ablation_cuckoo_hashes(benchmark, capsys):
    run_figure(benchmark, capsys, ablation_cuckoo_hashes)
