"""Fig. 2: Barnes-Hut get-reuse histogram (paper: P=4, 4,000 bodies)."""

from conftest import run_figure

from repro.bench.figures import fig02_reuse


def test_fig02_reuse(benchmark, capsys):
    run_figure(benchmark, capsys, fig02_reuse, nbodies=600, nprocs=4)
