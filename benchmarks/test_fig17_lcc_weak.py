"""Fig. 17: LCC weak scaling (paper: |V|=P*2^15, EF=16, P=16..128)."""

from conftest import run_figure

from repro.bench.figures import fig17_lcc_weak


def test_fig17_lcc_weak(benchmark, capsys):
    run_figure(benchmark, capsys, fig17_lcc_weak)
