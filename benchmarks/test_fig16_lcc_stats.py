"""Fig. 16: LCC CLaMPI statistics at the small storage size."""

from conftest import run_figure

from repro.bench.figures import fig16_lcc_stats


def test_fig16_lcc_stats(benchmark, capsys):
    run_figure(benchmark, capsys, fig16_lcc_stats)
