"""Fig. 7: CLaMPI caching costs per access type and data size."""

from conftest import run_figure

from repro.bench.figures import fig07_access_costs


def test_fig07_access_costs(benchmark, capsys):
    run_figure(benchmark, capsys, fig07_access_costs, z=10_000)
