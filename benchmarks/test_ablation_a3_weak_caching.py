"""Ablation A3: bounded-eviction weak caching (paper Sec. III-D2)."""

from conftest import run_figure

from repro.bench.ablations import ablation_weak_caching


def test_ablation_weak_caching(benchmark, capsys):
    run_figure(benchmark, capsys, ablation_weak_caching)
