"""Fig. 1: get latency per message size and process/node mapping."""

from conftest import run_figure

from repro.bench.figures import fig01_latency


def test_fig01_latency(benchmark, capsys):
    run_figure(benchmark, capsys, fig01_latency)
