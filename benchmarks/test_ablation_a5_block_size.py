"""Ablation A5: block-size dilemma of block-based caches (Fig. 3 story)."""

from conftest import run_figure

from repro.bench.ablations import ablation_native_block_size


def test_ablation_native_block_size(benchmark, capsys):
    run_figure(benchmark, capsys, ablation_native_block_size)
