"""Fig. 12: Barnes-Hut force time per body across cache configurations."""

from conftest import run_figure

from repro.bench.figures import fig12_bh_params


def test_fig12_bh_params(benchmark, capsys):
    run_figure(benchmark, capsys, fig12_bh_params, nbodies=1000, nprocs=8)
