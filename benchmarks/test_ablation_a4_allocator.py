"""Ablation A4: best-fit vs first-fit storage allocation (Sec. III-C2)."""

from conftest import run_figure

from repro.bench.ablations import ablation_allocator_fit


def test_ablation_allocator_fit(benchmark, capsys):
    run_figure(benchmark, capsys, ablation_allocator_fit)
