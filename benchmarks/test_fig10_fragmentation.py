"""Fig. 10: storage occupancy per victim-selection scheme (Z=100K in paper)."""

from conftest import run_figure

from repro.bench.figures import fig10_fragmentation


def test_fig10_fragmentation(benchmark, capsys):
    run_figure(benchmark, capsys, fig10_fragmentation)
