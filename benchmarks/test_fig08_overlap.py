"""Fig. 8: communication/computation overlap per access type."""

from conftest import run_figure

from repro.bench.figures import fig08_overlap


def test_fig08_overlap(benchmark, capsys):
    run_figure(benchmark, capsys, fig08_overlap)
