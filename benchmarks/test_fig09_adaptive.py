"""Fig. 9: completion time vs hash-table size, fixed vs adaptive."""

from conftest import run_figure

from repro.bench.figures import fig09_adaptive


def test_fig09_adaptive(benchmark, capsys):
    run_figure(benchmark, capsys, fig09_adaptive)
