"""Fig. 3: LCC get-size distribution (paper: R-MAT 2^16/2^20, 32 nodes)."""

from conftest import run_figure

from repro.bench.figures import fig03_sizes


def test_fig03_sizes(benchmark, capsys):
    run_figure(benchmark, capsys, fig03_sizes, scale=10, nprocs=8)
