"""Fig. 18: LCC weak-scaling access statistics (adaptive strategy)."""

from conftest import run_figure

from repro.bench.figures import fig18_lcc_weak_stats


def test_fig18_lcc_weak_stats(benchmark, capsys):
    run_figure(benchmark, capsys, fig18_lcc_weak_stats)
