"""Shared helper for the per-figure benchmark suite.

Each benchmark regenerates one figure of the paper via
:mod:`repro.bench.figures`, prints the reproduced table and asserts the
paper's qualitative claims.  ``pytest benchmarks/ --benchmark-only`` runs
them all; the printed tables are the reproduction artifacts.

Some figures accept reduced parameters here so the whole suite stays in the
minutes range; run ``python -m repro.bench`` for the (larger) defaults and
see EXPERIMENTS.md for the paper-scale mapping.
"""

from __future__ import annotations


def run_figure(benchmark, capsys, fn, **kwargs):
    fig = benchmark.pedantic(lambda: fn(**kwargs), iterations=1, rounds=1)
    with capsys.disabled():
        print("\n" + fig.render() + "\n")
    failed = [claim for claim, ok in fig.claims if not ok]
    assert not failed, f"paper claims not reproduced: {failed}"
    return fig
