"""Fig. 15: LCC vertex time across cache configurations (paper: 2^20/2^24, P=32)."""

from conftest import run_figure

from repro.bench.figures import fig15_lcc_params


def test_fig15_lcc_params(benchmark, capsys):
    run_figure(benchmark, capsys, fig15_lcc_params)
